"""Queueing models: the paper's analytic side.

:mod:`~repro.queueing.batchmodel` implements the D + batch-D / D / 1 / K
model of Section 6; :mod:`~repro.queueing.mdk1` provides M/D/1(/K) oracles
used to validate the network substrate; :mod:`~repro.queueing.palm` holds
the Palm-calculus loss-gap identities; :mod:`~repro.queueing.fastforward`
is the fluid/aggregate queue behind the analytic execution mode.
"""

from repro.queueing.fastforward import (
    FluidQueue,
    aggregate_batches,
    drain_schedule,
    fifo_waits,
)

from repro.queueing.batchmodel import (
    BatchArrivalQueue,
    BatchModelResult,
    geometric_packet_batches,
)
from repro.queueing.closure import (
    ClosureReport,
    EmpiricalBatchDistribution,
    closed_loop_comparison,
    fit_batch_distribution,
)
from repro.queueing.mdk1 import (
    md1_mean_queue_length,
    md1_mean_wait,
    mdk1_blocking_probability,
    mdk1_loss_vs_buffer,
)
from repro.queueing.palm import (
    clp_from_loss_gap,
    empirical_identity_gap,
    loss_gap_from_clp,
)

__all__ = [
    "FluidQueue",
    "aggregate_batches",
    "drain_schedule",
    "fifo_waits",
    "BatchArrivalQueue",
    "BatchModelResult",
    "geometric_packet_batches",
    "md1_mean_queue_length",
    "md1_mean_wait",
    "mdk1_blocking_probability",
    "mdk1_loss_vs_buffer",
    "clp_from_loss_gap",
    "empirical_identity_gap",
    "loss_gap_from_clp",
    "ClosureReport",
    "EmpiricalBatchDistribution",
    "closed_loop_comparison",
    "fit_batch_distribution",
]
