"""Fluid/aggregate fast-forward engine for a single bottleneck FIFO queue.

The paper's own model (Figure 3) is a fixed delay plus one finite FIFO
queue driven by Lindley's recurrence, so simulating every cross packet
through the event kernel is frequently overkill: between probe arrivals
the bottleneck queue can be advanced *analytically*.  This module provides
the two pieces the analytic execution mode is built from:

* :class:`FluidQueue` — a drop-tail FIFO advanced in closed form.  Work
  arrives as batches of packets and is served at the link rate; every
  ``advance``/``offer`` step is one application of Lindley's recurrence
  ``w' = (w - Δt)^+ + y`` on the queue workload, with event-faithful
  drop-tail semantics (capacity in packets or bytes, the in-service
  packet occupying no buffer slot, exactly like
  :class:`repro.net.queue.DropTailQueue` behind a busy
  :class:`repro.net.link.Interface`).
* :func:`aggregate_batches` — collapses a sorted cross-traffic arrival
  stream into aggregate batch arrivals *outside* a guard window around
  each probe, so the queue advances in O(batches) instead of O(packets)
  while the packets nearest every probe keep per-packet granularity.
  This is the lossy coarse-graining primitive: the analytic execution
  mode does *not* use it on its exact path (a no-drop certificate plus
  per-packet replay keeps that path bit-identical to event mode), but it
  remains the tool for workload-structure estimates where tick-level
  divergence is acceptable.

:func:`fifo_waits` applies the vectorized
:func:`repro.analysis.lindley.lindley_waits` to an arrival stream through
an infinite FIFO (used for the fast access links feeding the bottleneck,
which never drop).  The experiments layer
(:mod:`repro.experiments.fastforward`) extracts calibrated scenarios into
these primitives.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.lindley import lindley_waits
from repro.errors import ConfigurationError
from repro.net.queue import MODE_BYTES, MODE_PACKETS
from repro.units import bits_to_bytes


def fifo_waits(arrival_times: Sequence[float], sizes_bits: Sequence[float],
               rate_bps: float) -> np.ndarray:
    """Queueing waits of a sorted arrival stream through an infinite FIFO.

    One vectorized :func:`~repro.analysis.lindley.lindley_waits` call:
    service times are ``sizes_bits / rate_bps`` and inter-arrival times
    come from the (sorted) arrival instants.  Used for the fast access
    links whose buffers never overflow in the calibrated scenarios.
    """
    times = np.asarray(arrival_times, dtype=float)
    bits = np.asarray(sizes_bits, dtype=float)
    if times.shape != bits.shape:
        raise ConfigurationError(
            f"arrival/size lengths differ: {times.shape} vs {bits.shape}")
    if rate_bps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_bps}")
    if times.size == 0:
        return np.empty(0)
    if np.any(np.diff(times) < 0):
        raise ConfigurationError("arrival times must be sorted")
    service = bits / rate_bps
    gaps = np.empty_like(times)
    gaps[:-1] = np.diff(times)
    gaps[-1] = 0.0  # unused for the last customer's wait
    return lindley_waits(service, gaps)


class FluidQueue:
    """A drop-tail FIFO advanced analytically between arrivals.

    Mirrors the observable behaviour of a
    :class:`~repro.net.queue.DropTailQueue` behind an
    :class:`~repro.net.link.Interface`: the transmitter serves one packet
    at a time at ``rate_bps``; the packet in service occupies no buffer
    slot; an arriving packet drops when the *waiting* occupancy plus
    itself would exceed ``capacity`` (packets or bytes per ``mode``).

    Work is held as FIFO entries of ``(bits, packets)``; an entry with
    ``packets > 1`` is an aggregate batch whose packets are assumed
    equal-sized (per-packet entries — the analytic mode's exact path —
    carry no such assumption).  :meth:`advance` serves whole
    entries in closed form — each step is Lindley's recurrence on the
    backlog — so cost is O(entries), not O(simulated events).

    Counters (``arrivals``/``drops``/``departures`` and the time-weighted
    occupancy integrals) follow the event queue's accounting so the
    analytic mode can report comparable queue statistics.
    """

    def __init__(self, rate_bps: float, capacity: int,
                 mode: str = MODE_PACKETS) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(
                f"service rate must be positive, got {rate_bps}")
        if capacity <= 0:
            raise ConfigurationError(
                f"queue capacity must be positive, got {capacity}")
        if mode not in (MODE_PACKETS, MODE_BYTES):
            raise ConfigurationError(f"unknown queue mode {mode!r}")
        self.rate_bps = rate_bps
        self.capacity = capacity
        self.mode = mode
        self._packets_mode = mode == MODE_PACKETS
        self._now = 0.0
        #: Remaining bits of the packet currently being transmitted.
        self._service_bits = 0.0
        #: Waiting batches, FIFO: [bits, packets] (mutable pairs).
        self._entries: deque = deque()
        self._waiting_packets = 0
        self._waiting_bits = 0.0
        self.arrivals = 0
        self.drops = 0
        self.departures = 0
        self._busy_seconds = 0.0
        self._occupancy_packet_seconds = 0.0
        self._occupancy_bit_seconds = 0.0
        self._occupancy_max_packets = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Time the queue state has been advanced to."""
        return self._now

    @property
    def workload_seconds(self) -> float:
        """Seconds of service ahead of a new arrival (its Lindley wait)."""
        return (self._service_bits + self._waiting_bits) / self.rate_bps

    @property
    def waiting_packets(self) -> int:
        """Buffered packets, excluding the one in service."""
        return self._waiting_packets

    @property
    def waiting_bits(self) -> float:
        """Buffered bits, excluding the packet in service."""
        return self._waiting_bits

    # ------------------------------------------------------------------
    def advance(self, to_time: float) -> None:
        """Serve work until ``to_time`` (Lindley drain on the backlog).

        This is the analytic mode's hottest loop, so state lives in
        locals for its duration: drop/wait semantics are unchanged from
        the straightforward attribute-at-a-time version (the equivalence
        tests pin them), only the Python overhead per step shrinks.
        """
        now = self._now
        if to_time <= now:
            return
        service_bits = self._service_bits
        entries = self._entries
        if service_bits == 0.0 and not entries:
            # Idle queue: occupancy zero, nothing to integrate.
            self._now = to_time
            return
        rate = self.rate_bps
        busy = self._busy_seconds
        occ_pkt = self._occupancy_packet_seconds
        occ_bit = self._occupancy_bit_seconds
        waiting_packets = self._waiting_packets
        waiting_bits = self._waiting_bits
        departures = self.departures
        while True:
            if service_bits > 0.0:
                finish = now + service_bits / rate
                if finish > to_time:
                    span = to_time - now
                    service_bits -= span * rate
                    busy += span
                    occ_pkt += waiting_packets * span
                    occ_bit += waiting_bits * span
                    break
                span = finish - now
                busy += span
                occ_pkt += waiting_packets * span
                occ_bit += waiting_bits * span
                now = finish
                service_bits = 0.0
                departures += 1
                continue
            if not entries:
                break  # idle, occupancy zero: nothing to integrate
            entry = entries[0]
            bits, packets = entry
            span = bits / rate
            if now + span <= to_time:
                # The whole entry drains before to_time: closed form.
                # When packet i of the entry enters service the waiting
                # count has already dropped by i + 1; each then serves
                # for the same per-packet span, so the occupancy
                # integral is an arithmetic series, not a per-packet
                # loop.
                entries.popleft()
                waiting_packets -= packets
                waiting_bits -= bits
                per_packet_span = bits / packets / rate
                per_packet_bits = bits / packets
                steps = packets * (packets + 1) / 2.0
                occ_pkt += ((waiting_packets * packets + steps - packets)
                            * per_packet_span)
                occ_bit += ((waiting_bits * packets
                             + (steps - packets) * per_packet_bits)
                            * per_packet_span)
                busy += span
                departures += packets
                now += span
                continue
            # Entry outlives the step: pull one packet into service and
            # loop (the in-service branch handles the partial span).
            per_packet_bits = bits / packets
            entry[0] = bits - per_packet_bits
            entry[1] = packets - 1
            if entry[1] == 0:
                entries.popleft()
            waiting_packets -= 1
            waiting_bits -= per_packet_bits
            service_bits = per_packet_bits
        self._now = to_time
        self._service_bits = service_bits
        self._busy_seconds = busy
        self._occupancy_packet_seconds = occ_pkt
        self._occupancy_bit_seconds = occ_bit
        self._waiting_packets = waiting_packets
        self._waiting_bits = waiting_bits
        self.departures = departures

    # ------------------------------------------------------------------
    def offer(self, at: float, bits: float, packets: int = 1) -> int:
        """Present a batch at time ``at``; return packets accepted.

        Advances the queue to ``at`` first, so a probe's Lindley wait is
        ``workload_seconds`` read *before* its own ``offer``.  Admission
        follows event-drop semantics: the packet in service holds no
        buffer slot, a batch's surplus packets drop tail-first, and an
        idle transmitter takes one packet straight into service.
        """
        if packets < 1:
            raise ConfigurationError(
                f"batch needs at least one packet, got {packets}")
        if bits <= 0:
            raise ConfigurationError(
                f"batch bits must be positive, got {bits}")
        if at > self._now:
            if self._service_bits > 0.0 or self._entries:
                self.advance(at)
            else:
                self._now = at
        self.arrivals += packets
        per_packet_bits = bits / packets
        idle = self._service_bits == 0.0 and not self._entries
        if self._packets_mode:
            room = self.capacity - self._waiting_packets
        else:
            per_packet_bytes = bits_to_bytes(per_packet_bits)
            free_bytes = (self.capacity
                          - bits_to_bytes(self._waiting_bits))
            room = int(free_bytes // per_packet_bytes) \
                if per_packet_bytes > 0 else packets
            if idle and room == 0 \
                    and per_packet_bytes > self.capacity:
                # Even an empty buffer cannot hold this packet.
                idle = False
        if room < 0:
            room = 0
        if idle:
            room += 1  # the first packet goes straight into service
        accepted = packets if packets < room else room
        self.drops += packets - accepted
        if accepted == 0:
            return 0
        queued = accepted
        if idle:
            self._service_bits = per_packet_bits
            queued -= 1
        if queued > 0:
            self._entries.append([per_packet_bits * queued, queued])
            self._waiting_packets += queued
            self._waiting_bits += per_packet_bits * queued
            if self._waiting_packets > self._occupancy_max_packets:
                self._occupancy_max_packets = self._waiting_packets
        return accepted

    # ------------------------------------------------------------------
    def stats(self, elapsed: float) -> dict:
        """Queue statistics shaped like the event mode's per-queue dict.

        ``elapsed`` is the total observation window (occupancy means are
        time-weighted over it, matching
        :func:`repro.experiments.campaign.collect_queue_stats` closely
        enough for reporting — aggregate entries, where used, make the
        occupancy figures approximate, never the drop counts).
        """
        if elapsed <= 0:
            raise ConfigurationError(
                f"elapsed must be positive, got {elapsed}")
        loss = self.drops / self.arrivals if self.arrivals else 0.0
        return {
            "arrivals": float(self.arrivals),
            "drops": float(self.drops),
            "departures": float(self.departures),
            "loss_fraction": loss,
            "occupancy_mean_pkts": self._occupancy_packet_seconds / elapsed,
            "occupancy_max_pkts": float(self._occupancy_max_packets),
            "occupancy_mean_bytes": bits_to_bytes(
                self._occupancy_bit_seconds) / elapsed,
        }

    def __repr__(self) -> str:
        return (f"<FluidQueue {self._waiting_packets} pkts waiting of "
                f"{self.capacity} {self.mode}, {self.drops} drops, "
                f"t={self._now:.6f}>")


def aggregate_batches(times: Sequence[float], bits: Sequence[float],
                      probe_times: Sequence[float], guard: float,
                      max_batch_packets: int = 8,
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse cross arrivals outside probe guard windows into batches.

    Arrivals within ``guard`` seconds of any probe arrival keep
    per-packet granularity (so the queue state every probe actually
    samples is built from exact arrivals); the rest are grouped per
    inter-probe interval — never across a probe — into batches of at most
    ``max_batch_packets``, placed at the mean arrival time of their
    members.  Total bits and packet counts are conserved exactly.

    Parameters are arrays sorted by time.  Returns ``(batch_times,
    batch_bits, batch_packets)``, sorted by time.
    """
    times = np.asarray(times, dtype=float)
    bits = np.asarray(bits, dtype=float)
    probes = np.asarray(probe_times, dtype=float)
    if times.shape != bits.shape:
        raise ConfigurationError(
            f"arrival/size lengths differ: {times.shape} vs {bits.shape}")
    if guard < 0:
        raise ConfigurationError(f"guard must be >= 0, got {guard}")
    if max_batch_packets < 1:
        raise ConfigurationError(
            f"max_batch_packets must be >= 1, got {max_batch_packets}")
    if times.size == 0:
        return times, bits, np.empty(0, dtype=int)
    if np.any(np.diff(times) < 0):
        raise ConfigurationError("arrival times must be sorted")
    if probes.size == 0:
        protected = np.zeros(times.shape, dtype=bool)
        interval = np.zeros(times.shape, dtype=int)
    else:
        right = np.searchsorted(probes, times)
        dist_next = np.where(right < probes.size,
                             probes[np.minimum(right, probes.size - 1)]
                             - times, np.inf)
        dist_prev = np.where(right > 0,
                             times - probes[np.maximum(right - 1, 0)],
                             np.inf)
        protected = (dist_next <= guard) | (dist_prev <= guard)
        interval = right
    free = ~protected
    if not np.any(free):
        return times, bits, np.ones(times.size, dtype=int)

    free_times = times[free]
    free_bits = bits[free]
    free_interval = interval[free]
    # Chunk starts: the first arrival of each interval, then every
    # max_batch_packets-th arrival within it.
    new_interval = np.empty(free_interval.shape, dtype=bool)
    new_interval[0] = True
    new_interval[1:] = np.diff(free_interval) != 0
    group_start_positions = np.flatnonzero(new_interval)
    group_sizes = np.diff(np.append(group_start_positions,
                                    free_interval.size))
    ordinal = (np.arange(free_interval.size)
               - np.repeat(group_start_positions, group_sizes))
    chunk_starts = np.flatnonzero(new_interval
                                  | (ordinal % max_batch_packets == 0))
    counts = np.diff(np.append(chunk_starts, free_interval.size))
    batch_bits = np.add.reduceat(free_bits, chunk_starts)
    batch_times = np.add.reduceat(free_times, chunk_starts) / counts

    merged_times = np.concatenate([times[protected], batch_times])
    merged_bits = np.concatenate([bits[protected], batch_bits])
    merged_packets = np.concatenate(
        [np.ones(int(np.count_nonzero(protected)), dtype=int), counts])
    order = np.argsort(merged_times, kind="stable")
    return (merged_times[order], merged_bits[order],
            merged_packets[order])


def drain_schedule(queue: FluidQueue, arrivals: Sequence[Tuple[float, float,
                                                               int]],
                   ) -> List[int]:
    """Feed ``(time, bits, packets)`` batches to ``queue`` in order.

    Convenience driver for tests: returns accepted counts per batch.
    """
    accepted = []
    for at, bits, packets in arrivals:
        accepted.append(queue.offer(at, bits, packets=packets))
    return accepted
