"""The queueing model of Figure 3 / Section 6, exactly.

Bolot's model: a single FIFO server of rate μ with a finite buffer of K
*packets*, fed by (a) the deterministic probe stream (one P-bit packet every
δ seconds) and (b) an Internet stream contributing a batch of ``b_n`` bits
between probe arrivals, with a general batch-size distribution ("batch
deterministic" arrivals).  His conclusion reports that this model reproduces
probe compression and the essentially-random loss behavior; this module lets
the benchmarks verify both claims against the full network simulation.

The implementation keeps packet-granular queue state (no event heap needed:
arrivals are a merge of two known point processes), applies Lindley's logic
through explicit work accounting, and enforces the K-packet buffer exactly
as a drop-tail router would.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.netdyn.trace import LOST, ProbeTrace
from repro.units import bits_to_bytes, bytes_to_bits

#: Signature of a batch sampler: rng -> batch size in bits (0 = no batch).
BatchBitsSampler = Callable[[np.random.Generator], float]

#: Default cross-traffic packet size: 552-byte datagrams, in bits.
CROSS_PACKET_BITS = bytes_to_bits(552)


def geometric_packet_batches(mean_packets: float, packet_bits: float,
                             arrival_probability: float = 1.0,
                             ) -> BatchBitsSampler:
    """Batches of Geometric(mean) packets of fixed size, or no batch.

    With probability ``1 - arrival_probability`` an interval carries no
    cross traffic at all; otherwise a geometric number of packets arrives.
    """
    if mean_packets < 1:
        raise ConfigurationError(
            f"mean batch size must be >= 1, got {mean_packets}")
    if not 0.0 < arrival_probability <= 1.0:
        raise ConfigurationError(
            f"arrival probability must be in (0, 1], got "
            f"{arrival_probability}")
    success = 1.0 / mean_packets

    def sample(rng: np.random.Generator) -> float:
        if rng.random() >= arrival_probability:
            return 0.0
        return float(rng.geometric(success)) * packet_bits

    return sample


@dataclass
class BatchModelResult:
    """Output of one run of the batch-arrival queue model."""

    #: Probe waiting times, seconds; NaN where the probe was lost.
    waits: np.ndarray
    #: True where the probe was dropped at the buffer.
    lost: np.ndarray
    #: Fraction of cross-traffic bits dropped.
    cross_loss_fraction: float
    delta: float
    probe_bits: float
    mu: float

    def to_trace(self, fixed_delay: float = 0.0,
                 meta: Optional[dict] = None) -> ProbeTrace:
        """Convert to a :class:`ProbeTrace` (rtt = D + wait + service)."""
        rtts = np.where(np.isnan(self.waits), LOST,
                        fixed_delay + self.waits + self.probe_bits / self.mu)
        return ProbeTrace.from_samples(
            delta=self.delta, rtts=rtts.tolist(),
            payload_bytes=max(1, int(bits_to_bytes(self.probe_bits)) - 40),
            wire_bytes=int(bits_to_bytes(self.probe_bits)),
            meta={"model": "batch", **(meta or {})})


class BatchArrivalQueue:
    """D (probes) + batch-D (Internet) / D / 1 / K queue.

    Parameters
    ----------
    mu:
        Service rate, bits per second.
    buffer_packets:
        Buffer size K in packets (waiting + in service), as in the
        paper's Figure 3 model.  An arriving packet is dropped when the
        buffer holds K packets.
    delta:
        Probe inter-arrival time, seconds.
    probe_bits:
        Probe packet size P, bits.
    batch_bits:
        Sampler of the Internet batch size (bits) for each interval.
    cross_packet_bits:
        The batch is admitted as packets of this size, one by one, so a
        batch can be partially accepted (as in a real router).
    offset_fraction:
        Batches arrive at ``n δ + offset_fraction · δ``.
    """

    def __init__(self, mu: float, buffer_packets: int, delta: float,
                 probe_bits: float, batch_bits: BatchBitsSampler,
                 cross_packet_bits: float = CROSS_PACKET_BITS,
                 offset_fraction: float = 0.5) -> None:
        if mu <= 0 or delta <= 0 or probe_bits <= 0:
            raise ConfigurationError(
                "mu, delta, and probe_bits must all be positive")
        if buffer_packets < 1:
            raise ConfigurationError(
                f"buffer must hold at least one packet, got {buffer_packets}")
        if cross_packet_bits <= 0:
            raise ConfigurationError("cross_packet_bits must be positive")
        if not 0.0 <= offset_fraction < 1.0:
            raise ConfigurationError(
                f"offset fraction must be in [0, 1), got {offset_fraction}")
        self.mu = mu
        self.buffer_packets = buffer_packets
        self.delta = delta
        self.probe_bits = probe_bits
        self.batch_bits = batch_bits
        self.cross_packet_bits = cross_packet_bits
        self.offset_fraction = offset_fraction

    def run(self, probes: int, rng: np.random.Generator) -> BatchModelResult:
        """Simulate ``probes`` probe arrivals; exact work accounting."""
        waits = np.full(probes, np.nan)
        lost = np.zeros(probes, dtype=bool)
        queue: deque[float] = deque()  # remaining bits per queued packet
        last_time = 0.0
        cross_offered = 0.0
        cross_dropped = 0.0

        def drain(to_time: float) -> None:
            nonlocal last_time
            budget = (to_time - last_time) * self.mu
            last_time = to_time
            while queue and budget > 0.0:
                if queue[0] <= budget:
                    budget -= queue.popleft()
                else:
                    queue[0] -= budget
                    budget = 0.0

        def backlog_bits() -> float:
            return sum(queue)

        for n in range(probes):
            probe_time = n * self.delta
            drain(probe_time)
            if len(queue) >= self.buffer_packets:
                lost[n] = True
            else:
                waits[n] = backlog_bits() / self.mu
                queue.append(self.probe_bits)

            batch = self.batch_bits(rng)
            if batch > 0:
                drain(probe_time + self.offset_fraction * self.delta)
                cross_offered += batch
                remaining = batch
                while remaining > 0:
                    piece = min(self.cross_packet_bits, remaining)
                    if len(queue) >= self.buffer_packets:
                        cross_dropped += remaining
                        break
                    queue.append(piece)
                    remaining -= piece

        cross_loss = cross_dropped / cross_offered if cross_offered else 0.0
        return BatchModelResult(waits=waits, lost=lost,
                                cross_loss_fraction=cross_loss,
                                delta=self.delta, probe_bits=self.probe_bits,
                                mu=self.mu)
