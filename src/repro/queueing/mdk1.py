"""M/D/1 and M/D/1/K reference formulas.

Closed-form and numeric results for the simplest relatives of the paper's
bottleneck queue.  They serve as oracles for the network substrate: a
simulated link fed Poisson fixed-size traffic must reproduce the
Pollaczek–Khinchine mean wait and the M/D/1/K blocking probability.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


def md1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """Mean queueing delay (excluding service) of an M/D/1 queue.

    Pollaczek–Khinchine for deterministic service:
    ``Wq = ρ y / (2 (1 − ρ))`` with ``ρ = λ y``.
    """
    rho = arrival_rate * service_time
    if not 0.0 <= rho < 1.0:
        raise ConfigurationError(
            f"utilization must be in [0, 1) for a stable queue, got {rho}")
    return rho * service_time / (2.0 * (1.0 - rho))


def md1_mean_queue_length(arrival_rate: float, service_time: float) -> float:
    """Mean number waiting in queue (Little's law on the mean wait)."""
    return arrival_rate * md1_mean_wait(arrival_rate, service_time)


def _poisson_pmf(mean: float, count: int) -> np.ndarray:
    """P(N = 0..count) for N ~ Poisson(mean)."""
    pmf = np.empty(count + 1)
    pmf[0] = math.exp(-mean)
    for j in range(1, count + 1):
        pmf[j] = pmf[j - 1] * mean / j
    return pmf


def mdk1_blocking_probability(arrival_rate: float, service_time: float,
                              buffer_size: int) -> float:
    """Blocking (loss) probability of an M/D/1/K queue.

    ``buffer_size`` is K, the maximum number of customers in the *system*
    (including the one in service).  Uses the embedded Markov chain at
    departure instants (states 0..K-1) and the standard M/G/1/K
    normalization: ``p_j = π_j / (π_0 + ρ)`` for j < K and
    ``p_K = 1 − Σ_{j<K} p_j``; by PASTA the blocking probability is
    ``p_K``.
    """
    if buffer_size < 1:
        raise ConfigurationError(f"buffer size must be >= 1, got {buffer_size}")
    rho = arrival_rate * service_time
    if rho <= 0:
        return 0.0
    k = buffer_size
    a = _poisson_pmf(rho, k)  # arrivals during one (deterministic) service

    # Embedded chain on queue length just after a departure: states 0..K-1.
    transition = np.zeros((k, k))
    for j in range(k - 1):
        transition[0, j] = a[j]
    transition[0, k - 1] = 1.0 - transition[0, :k - 1].sum()
    for i in range(1, k):
        for j in range(i - 1, k - 1):
            transition[i, j] = a[j - i + 1]
        transition[i, k - 1] = 1.0 - transition[i, :k - 1].sum()

    # Stationary distribution of the embedded chain.
    eye = np.eye(k)
    system = np.vstack([(transition.T - eye)[:-1], np.ones(k)])
    rhs = np.zeros(k)
    rhs[-1] = 1.0
    pi, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    pi = np.clip(pi, 0.0, None)
    pi = pi / pi.sum()

    # Time-stationary probabilities via the M/G/1/K relation.
    normalizer = pi[0] + rho
    p = pi / normalizer
    p_block = 1.0 - p.sum()
    return float(min(max(p_block, 0.0), 1.0))


def mdk1_loss_vs_buffer(arrival_rate: float, service_time: float,
                        buffer_sizes: list[int]) -> list[float]:
    """Blocking probability for each K in ``buffer_sizes``."""
    return [mdk1_blocking_probability(arrival_rate, service_time, k)
            for k in buffer_sizes]
