"""Time-series statistics for delay traces.

Summary statistics, autocorrelation, moving averages, and a periodogram.
The spectral tools mirror the analysis of Mukherjee [19], whose spectral
decomposition of average delays exposed the diurnal congestion cycle; the
example scripts use the periodogram to recover the period of injected
periodic faults (the 90-second gateway 'debug' stalls of [22]).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


@dataclass
class DelaySummary:
    """Five-number-plus summary of the received round-trip times."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    p99: float
    maximum: float


def summarize(trace: ProbeTrace) -> DelaySummary:
    """Summary statistics of the received probes' rtts."""
    valid = trace.valid_rtts
    if valid.size == 0:
        raise InsufficientDataError("no received probes")
    return DelaySummary(
        count=int(valid.size),
        mean=float(valid.mean()),
        std=float(valid.std(ddof=1)) if valid.size > 1 else 0.0,
        minimum=float(valid.min()),
        median=float(np.median(valid)),
        p90=float(np.percentile(valid, 90)),
        p99=float(np.percentile(valid, 99)),
        maximum=float(valid.max()),
    )


def _contiguous_valid(trace: ProbeTrace) -> np.ndarray:
    """Received rtts with losses filled by linear interpolation.

    Spectral and autocorrelation estimates need an evenly spaced series;
    occasional losses are interpolated (and a trace that is mostly losses
    is rejected).
    """
    r = trace.rtts.copy()
    received = trace.received
    if received.sum() < max(2, 0.5 * len(r)):
        raise InsufficientDataError(
            "too many losses for an evenly-spaced series")
    indices = np.arange(len(r))
    r[~received] = np.interp(indices[~received], indices[received],
                             r[received])
    return r


#: Series length above which autocorrelation sums go through the FFT.
#: ``np.correlate`` is O(n·max_lag) with a tiny constant — unbeatable for
#: the short traces tests and examples use — while the zero-padded FFT is
#: O(n log n) regardless of lag count and wins on long campaigns.
_FFT_MIN_SIZE = 4096


def autocorrelation_sums(centered: np.ndarray, max_lag: int) -> np.ndarray:
    """Raw lagged products ``Σ_t x_t x_{t+lag}`` for lags ``0 .. max_lag``.

    The shared vectorized core of the sample ACF (here) and the
    Yule–Walker autocovariances (:mod:`repro.analysis.arma`): callers
    normalize by their own denominator.  ``centered`` must already have
    its mean removed.  Small inputs use ``np.correlate``; long series
    switch to a zero-padded real FFT of ``|S|^2`` (circular correlation
    made linear by padding to at least ``2n``), identical up to float
    rounding (~1e-12 relative).
    """
    centered = np.ascontiguousarray(centered, dtype=float)
    n = len(centered)
    if not 0 <= max_lag < n:
        raise AnalysisError(
            f"need 0 <= max_lag < {n}, got {max_lag}")
    if n < _FFT_MIN_SIZE:
        # Full cross-correlation; lag-k sums sit at offsets n-1 .. n-1+k.
        return np.correlate(centered, centered,
                            mode="full")[n - 1:n + max_lag]
    size = 1 << int(np.ceil(np.log2(2 * n)))
    spectrum = np.fft.rfft(centered, n=size)
    return np.fft.irfft(np.abs(spectrum) ** 2, n=size)[:max_lag + 1]


def autocorrelation(trace: ProbeTrace, max_lag: int) -> np.ndarray:
    """Sample ACF of the rtt series at lags ``0 .. max_lag``."""
    if max_lag < 1:
        raise AnalysisError(f"max_lag must be >= 1, got {max_lag}")
    series = _contiguous_valid(trace)
    if len(series) <= max_lag:
        raise InsufficientDataError(
            f"series of {len(series)} too short for lag {max_lag}")
    centered = series - series.mean()
    denominator = float(np.dot(centered, centered))
    # Guard against an (effectively) constant series; the threshold is
    # relative so float rounding in the mean does not defeat it.
    scale = max(1.0, abs(float(series.mean())))
    if denominator <= len(series) * (1e-9 * scale) ** 2:
        raise InsufficientDataError("constant series has undefined ACF")
    return autocorrelation_sums(centered, max_lag) / denominator


def moving_average(trace: ProbeTrace, window: int) -> np.ndarray:
    """Centered moving average of the (interpolated) rtt series."""
    if window < 1:
        raise AnalysisError(f"window must be >= 1, got {window}")
    series = _contiguous_valid(trace)
    kernel = np.ones(window) / window
    return np.convolve(series, kernel, mode="valid")


@dataclass
class Periodogram:
    """One-sided periodogram of the rtt series."""

    #: Frequencies in Hz (excludes DC).
    frequencies: np.ndarray
    #: Power at each frequency.
    power: np.ndarray

    def dominant_period(self) -> float:
        """Period (seconds) of the strongest spectral component."""
        if self.power.size == 0:
            raise InsufficientDataError("empty periodogram")
        peak = int(np.argmax(self.power))
        return 1.0 / float(self.frequencies[peak])


def periodogram(trace: ProbeTrace, detrend: bool = True) -> Periodogram:
    """Periodogram of the rtt series sampled every δ seconds."""
    series = _contiguous_valid(trace)
    if detrend:
        series = series - series.mean()
    spectrum = np.abs(np.fft.rfft(series)) ** 2 / len(series)
    freqs = np.fft.rfftfreq(len(series), d=trace.delta)
    return Periodogram(frequencies=freqs[1:], power=spectrum[1:])


def spike_clusters(trace: ProbeTrace, threshold: float,
                   guard: float = 5.0) -> np.ndarray:
    """Start times of clusters of extreme rtts (rtt > threshold).

    Consecutive spikes closer than ``guard`` seconds belong to one cluster.
    This is the outlier-first debugging workflow of [22]: a stalled gateway
    produces rtts far beyond anything congestion can, so thresholding above
    the congestion ceiling isolates the fault events.
    """
    if guard <= 0:
        raise AnalysisError(f"guard must be positive, got {guard}")
    times = trace.send_times[trace.rtts > threshold]
    if times.size == 0:
        return np.empty(0)
    # Chain spikes off the *most recent* spike, not the cluster start: a
    # fault lasting longer than ``guard`` is still one cluster as long as
    # no inter-spike gap exceeds the guard interval.
    starts = [times[0]]
    last = times[0]
    for t in times[1:]:
        if t - last > guard:
            starts.append(t)
        last = t
    return np.asarray(starts)


def periodic_spike_period(trace: ProbeTrace, threshold: float,
                          guard: float = 5.0) -> float:
    """Median spacing of spike clusters: the period of a recurring fault.

    Detects the 90-second gateway 'debug option' signature of [22].
    """
    starts = spike_clusters(trace, threshold, guard=guard)
    if starts.size < 2:
        raise InsufficientDataError(
            f"found {starts.size} spike cluster(s); need >= 2")
    return float(np.median(np.diff(starts)))


def delay_change_rate(trace: ProbeTrace, threshold: float) -> float:
    """Fraction of consecutive received pairs whose rtt jumps > threshold.

    A cheap instability metric: the 'rapid fluctuations of queueing delays
    over small intervals' the paper reports show up as a high change rate
    at small δ.
    """
    r = trace.rtts
    both = trace.received[:-1] & trace.received[1:]
    if not np.any(both):
        raise InsufficientDataError("no consecutive received pairs")
    jumps = np.abs(np.diff(r))[both]
    return float(np.mean(jumps > threshold))
