"""Delay-variation (jitter) metrics for real-time media.

Section 5's audio discussion is ultimately about delay variation: a
playback buffer absorbs jitter, not delay.  This module provides the two
standard measures, computed directly from probe traces:

* :func:`rfc3550_jitter` — the RTP interarrival jitter estimator
  ``J += (|D(i-1, i)| − J) / 16``, the number every RTP receiver reports;
* :func:`ipdv` — IP packet delay variation (RFC 3393): the distribution of
  delay differences between consecutive packets, summarized by quantiles.

Both use consecutive *received* probes only, as a media receiver would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace
from repro.units import seconds_to_ms


def _consecutive_delay_differences(trace: ProbeTrace) -> np.ndarray:
    """``rtt_{n+1} − rtt_n`` over consecutive received pairs."""
    r = trace.rtts
    both = trace.received[:-1] & trace.received[1:]
    if not np.any(both):
        raise InsufficientDataError("no consecutive received pairs")
    return np.diff(r)[both]


def rfc3550_jitter(trace: ProbeTrace, gain: float = 1.0 / 16.0) -> float:
    """The RTP interarrival jitter after processing the whole trace.

    ``J_i = J_{i-1} + (|D| − J_{i-1}) * gain`` with the standard 1/16
    gain; D is the difference of consecutive transit-time differences,
    which for periodic probes equals the rtt difference.
    """
    if not 0.0 < gain <= 1.0:
        raise AnalysisError(f"gain must be in (0, 1], got {gain}")
    differences = np.abs(_consecutive_delay_differences(trace))
    jitter = 0.0
    for d in differences:
        jitter += (float(d) - jitter) * gain
    return jitter


@dataclass
class IpdvSummary:
    """Quantiles of the delay-variation distribution (RFC 3393)."""

    mean_abs: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (f"IPDV mean|dv| {seconds_to_ms(self.mean_abs):.2f} ms, p95 "
                f"{seconds_to_ms(self.p95):.2f} ms, "
                f"p99 {seconds_to_ms(self.p99):.2f} ms, "
                f"max {seconds_to_ms(self.maximum):.2f} ms")


def ipdv(trace: ProbeTrace) -> IpdvSummary:
    """Summarize the one-sided delay-variation distribution |Δrtt|."""
    magnitudes = np.abs(_consecutive_delay_differences(trace))
    return IpdvSummary(
        mean_abs=float(magnitudes.mean()),
        p50=float(np.percentile(magnitudes, 50)),
        p95=float(np.percentile(magnitudes, 95)),
        p99=float(np.percentile(magnitudes, 99)),
        maximum=float(magnitudes.max()),
    )


def jitter_vs_buffer_tradeoff(trace: ProbeTrace,
                              quantile: float = 0.99) -> float:
    """Extra playout delay (beyond min rtt) needed to absorb jitter.

    A practical sizing rule: buffer the ``quantile`` of the queueing-delay
    distribution above the delay floor.  This is the per-trace answer to
    the paper's playback-buffer question, expressed as pure jitter budget.
    """
    if not 0.0 < quantile < 1.0:
        raise AnalysisError(f"quantile must be in (0, 1), got {quantile}")
    valid = trace.valid_rtts
    if valid.size == 0:
        raise InsufficientDataError("no received probes")
    return float(np.quantile(valid, quantile) - valid.min())
