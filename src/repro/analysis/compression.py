"""Probe-compression episode detection.

Probe compression (the paper's name for the clustering of probes behind a
large cross-traffic packet, analogous to ACK compression [29, 18]) leaves a
signature in the trace: runs of consecutive probes whose rtt difference is
``P/μ − δ``, i.e. probes that left the bottleneck back-to-back, ``P/μ``
apart.  This module extracts those episodes and summarizes their
statistics, which the Figure 8/9 discussion relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace
from repro.units import bytes_to_bits


@dataclass
class CompressionEpisode:
    """One run of compressed probes."""

    #: Index of the first compressed pair's earlier probe.
    start: int
    #: Number of consecutive compressed *pairs* (episode has length+1 probes).
    length: int


@dataclass
class CompressionReport:
    """Summary of probe compression in a trace."""

    episodes: list[CompressionEpisode]
    #: Fraction of consecutive received pairs that were compressed.
    pair_fraction: float
    #: Mean number of probes per episode (>= 2).
    mean_episode_probes: float

    @property
    def episode_count(self) -> int:
        """Number of compression episodes detected."""
        return len(self.episodes)


def detect_compression(trace: ProbeTrace, mu: float,
                       tolerance: float = 4e-3) -> CompressionReport:
    """Find compression episodes given the bottleneck rate ``mu``.

    A consecutive received pair (n, n+1) is *compressed* when
    ``rtt_{n+1} − rtt_n`` is within ``tolerance`` of ``P/μ − δ``.
    """
    if mu <= 0:
        raise AnalysisError(f"mu must be positive, got {mu}")
    r = trace.rtts
    received_pair = trace.received[:-1] & trace.received[1:]
    if not np.any(received_pair):
        raise InsufficientDataError("no consecutive received pairs")
    expected = bytes_to_bits(trace.wire_bytes) / mu - trace.delta
    compressed = received_pair & (
        np.abs((r[1:] - r[:-1]) - expected) <= tolerance)

    episodes: list[CompressionEpisode] = []
    start = None
    for i, flag in enumerate(compressed):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            episodes.append(CompressionEpisode(start=start,
                                               length=i - start))
            start = None
    if start is not None:
        episodes.append(CompressionEpisode(start=start,
                                           length=len(compressed) - start))

    pair_fraction = float(compressed.sum() / received_pair.sum())
    if episodes:
        mean_probes = float(np.mean([e.length + 1 for e in episodes]))
    else:
        mean_probes = 0.0
    return CompressionReport(episodes=episodes, pair_fraction=pair_fraction,
                             mean_episode_probes=mean_probes)
