"""Cross-traffic workload estimation via equation (6) (Figures 8 and 9).

The quantity ``w_{n+1} − w_n + δ`` — equivalently, the inter-arrival time of
returning probes — equals ``(b_n + P)/μ`` whenever the bottleneck stays
busy between consecutive probes.  Its histogram therefore reads out the
distribution of the cross-traffic workload ``b_n``, with peaks at:

* ``P/μ``: compressed probes (zero cross traffic between them);
* ``δ``: an unchanged queue (``w_{n+1} = w_n``);
* ``δ + i·S/μ``: ``i`` cross packets of size ``S`` arrived in between.

Peak positions recover the sizes of the packets the probes share the
bottleneck with — the paper finds one and two ~500-byte FTP packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace
from repro.units import bits_to_bytes, bytes_to_bits


@dataclass
class WorkloadDistribution:
    """Histogram of ``w_{n+1} − w_n + δ`` and the derived quantities."""

    #: Samples of ``w_{n+1} - w_n + δ`` in seconds.
    samples: np.ndarray
    #: Histogram counts and bin edges (seconds).
    counts: np.ndarray
    edges: np.ndarray
    delta: float
    mu: float
    probe_bits: float

    def batch_bits(self) -> np.ndarray:
        """Equation (6): cross-traffic bits between probes, clipped at 0."""
        return np.maximum(0.0, self.mu * self.samples - self.probe_bits)


@dataclass
class Peak:
    """One local maximum of the workload histogram."""

    #: Location (bin center), seconds.
    location: float
    #: Bin count at the peak.
    height: int
    #: Cross-traffic bytes implied by eq. (6) at this location.
    implied_bytes: float


def probe_gap_samples(trace: ProbeTrace) -> np.ndarray:
    """``w_{n+1} − w_n + δ`` for consecutive received probes.

    Computed as ``rtt_{n+1} − rtt_n + δ`` — identical since the fixed delay
    D cancels.  This is also the spacing of probes returning to the source.
    """
    r = trace.rtts
    both = trace.received[:-1] & trace.received[1:]
    if not np.any(both):
        raise InsufficientDataError(
            "no pair of consecutive probes was received")
    return (r[1:] - r[:-1] + trace.delta)[both]


def workload_distribution(trace: ProbeTrace, mu: float,
                          bin_width: float = 2e-3,
                          max_gap: Optional[float] = None,
                          ) -> WorkloadDistribution:
    """Histogram the workload samples of a trace.

    Parameters
    ----------
    mu:
        Bottleneck service rate in bits/s (measured or estimated via
        :func:`repro.analysis.phase.estimate_bottleneck_mu`).
    bin_width:
        Histogram bin width in seconds (2 ms default, comparable to the
        paper's figures).
    max_gap:
        Upper edge of the histogram; defaults to ``4 δ``.
    """
    if mu <= 0:
        raise AnalysisError(f"mu must be positive, got {mu}")
    if bin_width <= 0:
        raise AnalysisError(f"bin width must be positive, got {bin_width}")
    samples = probe_gap_samples(trace)
    upper = 4 * trace.delta if max_gap is None else max_gap
    edges = np.arange(0.0, upper + bin_width, bin_width)
    counts, edges = np.histogram(samples, bins=edges)
    return WorkloadDistribution(samples=samples, counts=counts, edges=edges,
                                delta=trace.delta, mu=mu,
                                probe_bits=bytes_to_bits(trace.wire_bytes))


def find_peaks(dist: WorkloadDistribution, min_height_fraction: float = 0.02,
               ) -> list[Peak]:
    """Local maxima of the histogram, tallest first.

    A bin is a peak if it exceeds both neighbors and holds at least
    ``min_height_fraction`` of all samples.  Adjacent-equal plateaus count
    once (leftmost bin).
    """
    counts = dist.counts
    if counts.size < 3:
        raise InsufficientDataError("histogram too short for peak finding")
    total = counts.sum()
    if total == 0:
        raise InsufficientDataError("empty histogram")
    centers = (dist.edges[:-1] + dist.edges[1:]) / 2.0
    peaks = []
    for i in range(1, len(counts) - 1):
        if counts[i] > counts[i - 1] and counts[i] >= counts[i + 1] \
                and counts[i] >= min_height_fraction * total:
            implied_bits = max(0.0, dist.mu * centers[i] - dist.probe_bits)
            peaks.append(Peak(location=float(centers[i]),
                              height=int(counts[i]),
                              implied_bytes=bits_to_bytes(implied_bits)))
    peaks.sort(key=lambda p: p.height, reverse=True)
    return peaks


def classify_peaks(peaks: list[Peak], delta: float, mu: float,
                   probe_bits: float, tolerance: float = 3e-3,
                   ) -> dict[str, Optional[Peak]]:
    """Attribute peaks to the paper's three mechanisms.

    Returns a dict with keys ``compression`` (near ``P/μ``), ``idle``
    (near ``δ``), and ``one_packet``: the first *workload* peak, i.e. the
    smallest-location peak that is neither the compression peak nor the
    idle peak.  By equation (6) the workload peaks sit at
    ``(i·S + P)/μ`` for cross packets of size ``S`` — independent of δ —
    so this peak directly reveals the cross-traffic packet size.
    """
    service = probe_bits / mu
    result: dict[str, Optional[Peak]] = {
        "compression": None, "idle": None, "one_packet": None}
    for peak in peaks:
        if abs(peak.location - service) <= tolerance \
                and result["compression"] is None:
            result["compression"] = peak
        elif abs(peak.location - delta) <= tolerance \
                and result["idle"] is None:
            result["idle"] = peak
    workload_peaks = [
        peak for peak in peaks
        if peak is not result["compression"] and peak is not result["idle"]
        and peak.location > service + tolerance]
    if workload_peaks:
        result["one_packet"] = min(workload_peaks,
                                   key=lambda p: p.location)
    return result
