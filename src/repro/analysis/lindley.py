"""Lindley's recurrence and the paper's two-stage application of it.

Lindley's recurrence (Figure 7 of the paper) relates consecutive waiting
times in a single-server FIFO queue::

    w_{n+1} = (w_n + y_n - x_n)^+

where ``y_n`` is the service time of customer ``n`` and ``x_n`` the
inter-arrival time between customers ``n`` and ``n+1``.  Section 4 of the
paper applies it twice — probe, then cross-traffic batch — to derive the
workload estimator ``b_n = μ(w_{n+1} − w_n + δ) − P`` (equation 6).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AnalysisError


def positive_part(x: np.ndarray) -> np.ndarray:
    """The paper's ``x^+`` operator: elementwise max(x, 0)."""
    return np.maximum(x, 0.0)


def lindley_waits(service_times: Sequence[float],
                  interarrival_times: Sequence[float],
                  initial_wait: float = 0.0) -> np.ndarray:
    """Waiting times of successive customers via Lindley's recurrence.

    Evaluated in closed form rather than by the sequential loop: with
    ``d_n = y_n − x_n`` and prefix sums ``C_n = Σ_{k<n} d_k``, unrolling
    the recurrence gives::

        w_n = C_n + max(w_0, −min_{1≤k≤n} C_k)

    so one ``cumsum`` and one ``minimum.accumulate`` replace the Python
    loop (the analytic fast-forward queue leans on this for long batch
    spans; :func:`lindley_waits_loop` keeps the literal recurrence as the
    property-tested reference).

    Parameters
    ----------
    service_times:
        ``y_n`` for customers ``0 .. N-1``.
    interarrival_times:
        ``x_n`` (time between arrivals of customers ``n`` and ``n+1``);
        must have the same length (the last entry is unused for the final
        customer's wait but keeps call sites symmetrical).
    initial_wait:
        ``w_0``.

    Returns
    -------
    Array of ``N`` waiting times ``w_0 .. w_{N-1}``.
    """
    y = np.asarray(service_times, dtype=float)
    x = np.asarray(interarrival_times, dtype=float)
    if y.shape != x.shape:
        raise AnalysisError(
            f"service and interarrival lengths differ: {y.shape} vs {x.shape}")
    if np.any(y < 0) or np.any(x < 0):
        raise AnalysisError("negative service or interarrival time")
    if y.size == 0:
        return np.empty_like(y)
    prefix = np.cumsum(y[:-1] - x[:-1])
    waits = np.empty_like(y)
    waits[0] = initial_wait
    if y.size > 1:
        running_min = np.minimum.accumulate(prefix)
        waits[1:] = prefix + np.maximum(float(initial_wait), -running_min)
    return waits


def lindley_waits_loop(service_times: Sequence[float],
                       interarrival_times: Sequence[float],
                       initial_wait: float = 0.0) -> np.ndarray:
    """Reference implementation of :func:`lindley_waits` (literal loop)."""
    y = np.asarray(service_times, dtype=float)
    x = np.asarray(interarrival_times, dtype=float)
    if y.shape != x.shape:
        raise AnalysisError(
            f"service and interarrival lengths differ: {y.shape} vs {x.shape}")
    if np.any(y < 0) or np.any(x < 0):
        raise AnalysisError("negative service or interarrival time")
    waits = np.empty_like(y)
    if waits.size == 0:
        return waits
    w = float(initial_wait)
    waits[0] = w
    for n in range(len(y) - 1):
        w = max(0.0, w + y[n] - x[n])
        waits[n + 1] = w
    return waits


def probe_waits_with_batches(delta: float, probe_service: float,
                             batch_bits: Sequence[float], mu: float,
                             batch_offsets: Sequence[float] = (),
                             ) -> np.ndarray:
    """Waiting times of periodic probes sharing a queue with batches.

    This is the exact two-stage recursion of Section 4: probe ``n`` arrives
    at ``n δ``; between probes ``n`` and ``n+1`` a batch of ``b_n`` bits
    arrives at ``n δ + t_n`` (``t_n`` from ``batch_offsets``, default
    ``δ/2``) and is served at rate ``mu``.

    Returns the probe waiting times ``w_0 .. w_{N}`` where ``N`` is
    ``len(batch_bits)``.
    """
    b = np.asarray(batch_bits, dtype=float)
    if np.any(b < 0):
        raise AnalysisError("negative batch size")
    if delta <= 0 or mu <= 0 or probe_service < 0:
        raise AnalysisError("delta and mu must be positive, service >= 0")
    if len(batch_offsets) == 0:
        offsets = np.full(len(b), delta / 2.0)
    else:
        offsets = np.asarray(batch_offsets, dtype=float)
        if offsets.shape != b.shape:
            raise AnalysisError("batch_offsets length mismatch")
        if np.any((offsets < 0) | (offsets > delta)):
            raise AnalysisError("batch offsets must lie in [0, delta]")

    waits = np.empty(len(b) + 1)
    w = 0.0
    waits[0] = w
    for n in range(len(b)):
        # Stage 1 (eq. 4): wait of the batch behind probe n.
        wb = max(0.0, w + probe_service - offsets[n])
        # Stage 2 (eq. 5): wait of probe n+1 behind the batch remnant.
        w = max(0.0, wb + b[n] / mu - (delta - offsets[n]))
        waits[n + 1] = w
    return waits


def estimate_batch_bits(waits: Sequence[float], delta: float, mu: float,
                        probe_bits: float) -> np.ndarray:
    """Equation (6): ``b_n = μ (w_{n+1} − w_n + δ) − P``.

    Valid when the queue does not empty between consecutive probes; values
    are clipped below at 0 since a negative workload just signals an idle
    period (the regime where equation 6 does not hold).
    """
    w = np.asarray(waits, dtype=float)
    if w.ndim != 1 or w.size < 2:
        raise AnalysisError("need at least two waiting times")
    b = mu * (np.diff(w) + delta) - probe_bits
    return positive_part(b)
