"""Phase-plot construction and structure detection (Section 4).

A phase plot places a marker at ``(rtt_n, rtt_{n+1})`` for every pair of
consecutively received probes.  Its structure identifies the regime:

* points hugging the diagonal ``y = x`` near ``(D, D)``: light traffic
  (equation 1);
* points on the *probe compression line* ``y = x + P/μ − δ``: probes
  queued back-to-back behind a large cross-traffic packet (equation 3).

The compression line crosses the x-axis at ``x = δ − P/μ``, which turns a
phase plot into a bottleneck-bandwidth estimator: the paper reads 48 ms off
Figure 2 and recovers μ ≈ 130 kb/s for the 128 kb/s transatlantic link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace
from repro.units import bytes_to_bits


@dataclass
class PhasePlot:
    """The point set ``(rtt_n, rtt_{n+1})`` of a trace."""

    x: np.ndarray
    y: np.ndarray
    delta: float
    wire_bits: float

    def __len__(self) -> int:
        return len(self.x)


def phase_points(trace: ProbeTrace) -> PhasePlot:
    """Extract phase-plane points from consecutively received probes."""
    r = trace.rtts
    both = trace.received[:-1] & trace.received[1:]
    if not np.any(both):
        raise InsufficientDataError(
            "no pair of consecutive probes was received")
    return PhasePlot(x=r[:-1][both], y=r[1:][both], delta=trace.delta,
                     wire_bits=bytes_to_bits(trace.wire_bytes))


@dataclass
class CompressionLineFit:
    """Result of locating the probe compression line in a phase plot."""

    #: Number of points attributed to the compression line.
    point_count: int
    #: Fraction of all phase points on the line.
    fraction: float
    #: Mean of ``rtt_{n+1} - rtt_n`` over the line's points (= P/μ − δ).
    mean_offset: float
    #: Estimated bottleneck service rate μ, bits/s (None if no points).
    mu_estimate: Optional[float]
    #: x-intercept of the line, ``δ − P/μ`` (None if no points).
    x_intercept: Optional[float]


def diagonal_fraction(plot: PhasePlot, tolerance: float = 5e-3) -> float:
    """Fraction of phase points within ``tolerance`` of the diagonal.

    Large-δ experiments (Figure 4) put nearly all mass here.
    """
    if len(plot) == 0:
        raise InsufficientDataError("empty phase plot")
    return float(np.mean(np.abs(plot.y - plot.x) <= tolerance))


def fit_compression_line(plot: PhasePlot, mu_hint: float,
                         tolerance: float = 4e-3) -> CompressionLineFit:
    """Locate the compression line ``y = x + P/μ − δ`` and estimate μ.

    Parameters
    ----------
    plot:
        Phase points.
    mu_hint:
        Rough bottleneck rate used only to center the search window (the
        estimate itself comes from the located points).  An error of 2x in
        the hint is tolerated for any δ that keeps ``P/μ − δ`` away from 0.
    tolerance:
        Half-width (seconds) of the band around the candidate line.

    Notes
    -----
    Points with ``y − x`` within ``tolerance`` of ``P/μ_hint − δ`` are
    attributed to the line; their mean offset re-estimates ``P/μ`` and
    hence μ.  When δ is large, the line merges with the diagonal region and
    the estimate degrades — exactly as in the paper, where the δ = 500 ms
    plot shows only two points on the line.
    """
    if len(plot) == 0:
        raise InsufficientDataError("empty phase plot")
    if mu_hint <= 0:
        raise AnalysisError(f"mu_hint must be positive, got {mu_hint}")
    expected_offset = plot.wire_bits / mu_hint - plot.delta
    offsets = plot.y - plot.x
    on_line = np.abs(offsets - expected_offset) <= tolerance
    count = int(np.count_nonzero(on_line))
    if count == 0:
        return CompressionLineFit(point_count=0, fraction=0.0,
                                  mean_offset=float("nan"),
                                  mu_estimate=None, x_intercept=None)
    mean_offset = float(np.mean(offsets[on_line]))
    service_time = mean_offset + plot.delta  # = P/mu
    mu = plot.wire_bits / service_time if service_time > 0 else None
    intercept = -mean_offset if mean_offset < 0 else None
    return CompressionLineFit(point_count=count,
                              fraction=count / len(plot),
                              mean_offset=mean_offset, mu_estimate=mu,
                              x_intercept=intercept)


def estimate_fixed_delay(trace: ProbeTrace) -> float:
    """Estimate D, the fixed round-trip component, as the minimum rtt."""
    return trace.min_rtt()


def estimate_bottleneck_mu(trace: ProbeTrace, mu_hint: float,
                           tolerance: float = 4e-3) -> Optional[float]:
    """One-call bottleneck estimator: phase plot + compression-line fit."""
    fit = fit_compression_line(phase_points(trace), mu_hint=mu_hint,
                               tolerance=tolerance)
    return fit.mu_estimate
