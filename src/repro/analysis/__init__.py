"""Analysis of probe traces: everything Sections 4 and 5 compute.

* :mod:`~repro.analysis.phase` — phase plots, compression line, bottleneck
  bandwidth estimation (Figures 2, 4, 5, 6).
* :mod:`~repro.analysis.workload` — equation (6) workload estimation and
  peak classification (Figures 8, 9).
* :mod:`~repro.analysis.loss` — ulp/clp/plg, loss runs, Gilbert fit, runs
  test (Table 3).
* :mod:`~repro.analysis.lindley` — Lindley recurrence solvers (Figure 7).
* :mod:`~repro.analysis.timeseries` — summaries, ACF, periodogram.
* :mod:`~repro.analysis.distributions` — constant+gamma fits [19], ECDF,
  playback-buffer sizing.
* :mod:`~repro.analysis.arma` — AR fitting and delay prediction (Section 3's
  parallel investigation).
* :mod:`~repro.analysis.compression` — probe compression episodes.
"""

from repro.analysis.arma import (
    ARModel,
    PredictionReport,
    evaluate_prediction,
    fit_ar,
    select_order,
)
from repro.analysis.compression import (
    CompressionEpisode,
    CompressionReport,
    detect_compression,
)
from repro.analysis.distributions import (
    ConstantPlusGammaFit,
    delay_histogram,
    ecdf,
    fit_constant_plus_gamma,
    playback_buffer_delay,
)
from repro.analysis.lindley import (
    estimate_batch_bits,
    lindley_waits,
    lindley_waits_loop,
    positive_part,
    probe_waits_with_batches,
)
from repro.analysis.loss import (
    GilbertModel,
    LossStats,
    RunsTestResult,
    fit_gilbert,
    loss_gap_distribution,
    loss_runs,
    loss_stats,
    mean_loss_gap,
    runs_test,
)
from repro.analysis.phase import (
    CompressionLineFit,
    PhasePlot,
    diagonal_fraction,
    estimate_bottleneck_mu,
    estimate_fixed_delay,
    fit_compression_line,
    phase_points,
)
from repro.analysis.jitter import (
    IpdvSummary,
    ipdv,
    jitter_vs_buffer_tradeoff,
    rfc3550_jitter,
)
from repro.analysis.stats import (
    ConfidenceInterval,
    ReplicationSummary,
    mean_interval,
    replicate,
    wilson_interval,
)
from repro.analysis.timeseries import (
    DelaySummary,
    Periodogram,
    autocorrelation,
    delay_change_rate,
    moving_average,
    periodic_spike_period,
    periodogram,
    spike_clusters,
    summarize,
)
from repro.analysis.workload import (
    Peak,
    WorkloadDistribution,
    classify_peaks,
    find_peaks,
    probe_gap_samples,
    workload_distribution,
)

__all__ = [
    "ARModel", "PredictionReport", "evaluate_prediction", "fit_ar",
    "select_order",
    "CompressionEpisode", "CompressionReport", "detect_compression",
    "ConstantPlusGammaFit", "delay_histogram", "ecdf",
    "fit_constant_plus_gamma", "playback_buffer_delay",
    "estimate_batch_bits", "lindley_waits", "lindley_waits_loop",
    "positive_part", "probe_waits_with_batches",
    "GilbertModel", "LossStats", "RunsTestResult", "fit_gilbert",
    "loss_gap_distribution", "loss_runs", "loss_stats", "mean_loss_gap",
    "runs_test",
    "CompressionLineFit", "PhasePlot", "diagonal_fraction",
    "estimate_bottleneck_mu", "estimate_fixed_delay",
    "fit_compression_line", "phase_points",
    "IpdvSummary", "ipdv", "jitter_vs_buffer_tradeoff", "rfc3550_jitter",
    "ConfidenceInterval", "ReplicationSummary", "mean_interval",
    "replicate", "wilson_interval",
    "DelaySummary", "Periodogram", "autocorrelation", "delay_change_rate",
    "moving_average", "periodic_spike_period", "periodogram",
    "spike_clusters", "summarize",
    "Peak", "WorkloadDistribution", "classify_peaks", "find_peaks",
    "probe_gap_samples", "workload_distribution",
]
