"""AR model fitting and one-step prediction for queueing delays.

Section 3 of the paper notes a parallel investigation: "whether ARMA models
are adequate to model queueing delays in communication networks", with
consequences for predictive congestion control [16].  This module provides
the autoregressive half of that program: Yule–Walker estimation, AIC-based
order selection, and one-step-ahead prediction error measurement, so the
question can be answered quantitatively on any trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.timeseries import autocorrelation_sums
from repro.errors import AnalysisError, FitError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


@dataclass
class ARModel:
    """An autoregressive model ``x_t = mean + Σ phi_i (x_{t-i} - mean) + e``."""

    #: AR coefficients phi_1 .. phi_p.
    coefficients: np.ndarray
    #: Process mean subtracted before fitting.
    mean: float
    #: Innovation (residual) variance.
    noise_variance: float

    @property
    def order(self) -> int:
        """The model order p."""
        return len(self.coefficients)

    def predict_next(self, history: np.ndarray) -> float:
        """One-step-ahead prediction from the last ``order`` samples."""
        history = np.asarray(history, dtype=float)
        if len(history) < self.order:
            raise AnalysisError(
                f"need {self.order} history samples, got {len(history)}")
        recent = history[-self.order:][::-1] - self.mean
        return self.mean + float(np.dot(self.coefficients, recent))

    def predict_series(self, series: np.ndarray) -> np.ndarray:
        """One-step predictions for ``series[order:]`` from its own past."""
        series = np.asarray(series, dtype=float)
        if len(series) <= self.order:
            raise AnalysisError("series shorter than model order")
        predictions = np.empty(len(series) - self.order)
        centered = series - self.mean
        for i in range(self.order, len(series)):
            window = centered[i - self.order:i][::-1]
            predictions[i - self.order] = self.mean + float(
                np.dot(self.coefficients, window))
        return predictions


def _autocovariances(series: np.ndarray, max_lag: int) -> np.ndarray:
    # Vectorized lagged-product sums shared with the sample ACF; the
    # Yule–Walker estimator divides by n (not n - lag) as usual.
    centered = series - series.mean()
    return autocorrelation_sums(centered, max_lag) / len(series)


def fit_ar(series: np.ndarray, order: int) -> ARModel:
    """Yule–Walker AR(p) fit.

    Raises
    ------
    FitError
        If the autocovariance matrix is singular (e.g. constant series).
    """
    series = np.asarray(series, dtype=float)
    if order < 1:
        raise AnalysisError(f"order must be >= 1, got {order}")
    if len(series) < 10 * order:
        raise InsufficientDataError(
            f"series of {len(series)} too short for AR({order})")
    gamma = _autocovariances(series, order)
    if gamma[0] <= 0:
        raise FitError("zero-variance series cannot be fit")
    # Toeplitz system R phi = r.
    matrix = np.empty((order, order))
    for i in range(order):
        for j in range(order):
            matrix[i, j] = gamma[abs(i - j)]
    try:
        phi = np.linalg.solve(matrix, gamma[1:order + 1])
    except np.linalg.LinAlgError as exc:
        raise FitError(f"Yule-Walker system singular: {exc}") from exc
    noise_variance = float(gamma[0] - np.dot(phi, gamma[1:order + 1]))
    return ARModel(coefficients=phi, mean=float(series.mean()),
                   noise_variance=max(noise_variance, 0.0))


def select_order(series: np.ndarray, max_order: int = 10) -> int:
    """Pick the AR order minimizing AIC."""
    series = np.asarray(series, dtype=float)
    best_order, best_aic = 1, np.inf
    n = len(series)
    for order in range(1, max_order + 1):
        try:
            model = fit_ar(series, order)
        except (InsufficientDataError, FitError):
            break
        if model.noise_variance <= 0:
            continue
        aic = n * np.log(model.noise_variance) + 2 * order
        if aic < best_aic:
            best_aic, best_order = aic, order
    return best_order


@dataclass
class PredictionReport:
    """How well an AR model predicts a trace's delays one step ahead."""

    order: int
    #: Root-mean-square one-step prediction error, seconds.
    rmse: float
    #: RMSE of the trivial predictor x_{t+1} = x_t, for comparison.
    naive_rmse: float

    @property
    def skill(self) -> float:
        """1 − rmse/naive_rmse: positive means the AR model helps."""
        if self.naive_rmse == 0:
            return 0.0
        return 1.0 - self.rmse / self.naive_rmse


def evaluate_prediction(trace: ProbeTrace, order: int = 0,
                        ) -> PredictionReport:
    """Fit an AR model to a trace's rtts and report prediction skill.

    ``order = 0`` selects the order by AIC.  Losses are linearly
    interpolated (see :func:`repro.analysis.timeseries.autocorrelation`).
    """
    from repro.analysis.timeseries import _contiguous_valid
    series = _contiguous_valid(trace)
    if order == 0:
        order = select_order(series)
    model = fit_ar(series, order)
    predictions = model.predict_series(series)
    actual = series[model.order:]
    rmse = float(np.sqrt(np.mean((predictions - actual) ** 2)))
    naive_rmse = float(np.sqrt(np.mean(np.diff(series) ** 2)))
    return PredictionReport(order=model.order, rmse=rmse,
                            naive_rmse=naive_rmse)
