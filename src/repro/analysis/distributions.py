"""Delay-distribution fitting: the constant-plus-gamma model of [19].

Mukherjee's study — which the paper reviews as the reference for behavior
over minute time scales — finds end-to-end delay best modeled by a constant
(the fixed path delay D) plus a gamma-distributed variable part.  This
module fits that model to a trace and provides ECDF/histogram helpers and a
Kolmogorov–Smirnov goodness-of-fit check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats

from repro.errors import FitError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


@dataclass
class ConstantPlusGammaFit:
    """Fitted parameters of ``rtt = D + Gamma(shape, scale)``."""

    #: The constant (location) component, seconds.
    constant: float
    #: Gamma shape parameter (a).
    shape: float
    #: Gamma scale parameter (seconds).
    scale: float
    #: Kolmogorov-Smirnov statistic of the fit.
    ks_statistic: float
    #: KS p-value (large = cannot reject the model).
    ks_p_value: float

    @property
    def mean(self) -> float:
        """Mean of the fitted distribution."""
        return self.constant + self.shape * self.scale

    @property
    def variance(self) -> float:
        """Variance of the fitted distribution."""
        return self.shape * self.scale ** 2

    def quantile(self, q: float) -> float:
        """Inverse CDF of the fitted model (used to size playback buffers)."""
        return self.constant + float(
            stats.gamma.ppf(q, self.shape, scale=self.scale))


def fit_constant_plus_gamma(trace: ProbeTrace,
                            constant: Optional[float] = None,
                            ) -> ConstantPlusGammaFit:
    """Fit ``D + gamma`` to the received rtts of a trace.

    ``constant`` defaults to just below the minimum observed rtt (the
    gamma's support must start at 0; we leave the smallest sample a small
    positive variable part).
    """
    valid = trace.valid_rtts
    if valid.size < 20:
        raise InsufficientDataError(
            f"need >= 20 received probes to fit, have {valid.size}")
    if constant is None:
        spread = max(valid.max() - valid.min(), 1e-6)
        # Dimensionless back-off (0.1% of the spread), not a unit conversion.
        constant = float(valid.min()) - 1e-3 * spread  # repro: noqa[UNIT001]
    excess = valid - constant
    if np.any(excess <= 0):
        raise FitError("constant must lie strictly below every sample")
    spread = float(excess.std())
    if spread < 1e-9 or spread < 1e-4 * float(excess.mean()):
        raise FitError(
            "delays are (nearly) constant; a gamma fit is degenerate")
    try:
        shape, _, scale = stats.gamma.fit(excess, floc=0.0)
    except Exception as exc:  # scipy raises bare Exceptions on bad input
        raise FitError(f"gamma fit failed: {exc}") from exc
    ks = stats.kstest(excess, "gamma", args=(shape, 0.0, scale))
    return ConstantPlusGammaFit(constant=float(constant), shape=float(shape),
                                scale=float(scale),
                                ks_statistic=float(ks.statistic),
                                ks_p_value=float(ks.pvalue))


def ecdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise InsufficientDataError("ecdf of empty sample")
    ordered = np.sort(values)
    probabilities = np.arange(1, len(ordered) + 1) / len(ordered)
    return ordered, probabilities


def delay_histogram(trace: ProbeTrace, bin_width: float = 10e-3,
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Histogram (counts, edges) of received rtts with fixed-width bins."""
    valid = trace.valid_rtts
    if valid.size == 0:
        raise InsufficientDataError("no received probes")
    upper = valid.max() + bin_width
    edges = np.arange(valid.min(), upper + bin_width, bin_width)
    counts, edges = np.histogram(valid, bins=edges)
    return counts, edges


def playback_buffer_delay(trace: ProbeTrace, target_loss: float = 0.01,
                          ) -> float:
    """Playback delay so that at most ``target_loss`` of packets arrive late.

    This is the audio-application sizing question of Section 5 / [24]: a
    packet is late if its rtt exceeds the chosen playback delay.  Lost
    packets are excluded here — they must be repaired by FEC or repetition
    regardless of buffering.
    """
    if not 0.0 < target_loss < 1.0:
        raise FitError(f"target_loss must be in (0, 1), got {target_loss}")
    valid = trace.valid_rtts
    if valid.size == 0:
        raise InsufficientDataError("no received probes")
    return float(np.percentile(valid, 100.0 * (1.0 - target_loss)))
