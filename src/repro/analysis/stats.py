"""Statistical machinery for measurement campaigns.

The paper reports single-run numbers; a reproduction should quantify how
stable those numbers are.  This module provides Wilson confidence intervals
for the loss probabilities (binomial proportions), Student-t intervals for
means, and an aggregator that replicates an experiment across seeds and
reports per-metric spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, Union

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import AnalysisError, InsufficientDataError


@dataclass
class ConfidenceInterval:
    """A point estimate with a two-sided confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        """Interval width, high − low."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (f"{self.estimate:.4g} "
                f"[{self.low:.4g}, {self.high:.4g}]@{self.confidence:.0%}")


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at the small loss counts
    sparse probing produces (e.g. δ = 500 ms gives 1200 probes per run).
    """
    if trials <= 0:
        raise AnalysisError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise AnalysisError(
            f"successes {successes} outside [0, {trials}]")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    z = float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
    # Clamp to [0, 1] and guard against float residue pushing a bound
    # past the point estimate (exact at successes = 0 or = trials).
    low = min(max(0.0, center - margin), p_hat)
    high = max(min(1.0, center + margin), p_hat)
    return ConfidenceInterval(estimate=p_hat, low=low, high=high,
                              confidence=confidence)


def mean_interval(samples: Sequence[float],
                  confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval for a mean."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise InsufficientDataError(
            f"need at least 2 samples for an interval, got {arr.size}")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    if sem == 0.0:
        return ConfidenceInterval(mean, mean, mean, confidence)
    t = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return ConfidenceInterval(estimate=mean, low=mean - t * sem,
                              high=mean + t * sem, confidence=confidence)


@dataclass
class ReplicationSummary:
    """Per-metric spread over replicated runs."""

    #: Metric name -> values across replications, in seed order.
    values: dict[str, list[float]]
    seeds: list[int]

    def interval(self, metric: str,
                 confidence: float = 0.95) -> ConfidenceInterval:
        """Mean confidence interval of one metric across replications."""
        if metric not in self.values:
            raise AnalysisError(f"unknown metric {metric!r}; have "
                                f"{sorted(self.values)}")
        return mean_interval(self.values[metric], confidence=confidence)

    def table(self) -> str:
        """Plain-text summary, one metric per line."""
        lines = []
        for metric in sorted(self.values):
            samples = np.asarray(self.values[metric])
            lines.append(f"{metric:24s} mean {samples.mean():10.4g}  "
                         f"sd {samples.std(ddof=1):9.4g}  "
                         f"min {samples.min():10.4g}  "
                         f"max {samples.max():10.4g}  "
                         f"n={samples.size}")
        return "\n".join(lines)


def replicate(metric_fn: Union[Callable[[int], dict[str, float]],
                               Mapping[int, dict[str, float]]],
              seeds: Sequence[int]) -> ReplicationSummary:
    """Collect per-seed metrics into a cross-seed summary.

    ``metric_fn`` is either a callable run as ``metric_fn(seed)`` for every
    seed, or a mapping ``seed -> metrics`` of precomputed values (the path
    parallel campaigns use: cells are executed elsewhere — possibly out of
    order, possibly in other processes — and only aggregated here).  Either
    way each seed contributes a flat dict of metric name -> value, and every
    replication must have the same keys.
    """
    if not seeds:
        raise AnalysisError("need at least one seed")
    if callable(metric_fn):
        fetch = metric_fn
    else:
        precomputed = dict(metric_fn)
        missing = [seed for seed in seeds if seed not in precomputed]
        if missing:
            raise AnalysisError(
                f"precomputed metrics missing seeds {missing}; have "
                f"{sorted(precomputed)}")
        fetch = precomputed.__getitem__
    values: dict[str, list[float]] = {}
    expected_keys = None
    for seed in seeds:
        metrics = fetch(seed)
        if expected_keys is None:
            expected_keys = set(metrics)
            for key in metrics:
                values[key] = []
        elif set(metrics) != expected_keys:
            raise AnalysisError(
                f"seed {seed} returned keys {sorted(metrics)}, expected "
                f"{sorted(expected_keys)}")
        for key, value in metrics.items():
            values[key].append(float(value))
    return ReplicationSummary(values=values, seeds=list(seeds))
