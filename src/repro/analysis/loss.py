"""Loss-process analysis (Section 5, Table 3).

The paper characterizes probe loss by the unconditional loss probability
``ulp = P(rtt_n = 0)``, the conditional probability
``clp = P(rtt_{n+1} = 0 | rtt_n = 0)``, and the packet loss gap
``plg = 1 / (1 − clp)`` (the mean number of consecutive losses, assuming
stationarity and ergodicity — a Palm-calculus identity).  Beyond those we
provide loss-run extraction, a Gilbert (2-state Markov) model fit, and a
Wald–Wolfowitz runs test for randomness of the loss sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import InsufficientDataError
from repro.netdyn.trace import ProbeTrace


@dataclass
class LossStats:
    """The paper's loss metrics for one trace."""

    #: Unconditional loss probability P(rtt_n = 0).
    ulp: float
    #: Conditional loss probability P(rtt_{n+1} = 0 | rtt_n = 0).
    clp: float
    #: Packet loss gap 1 / (1 - clp).
    plg: float
    #: Number of probes.
    count: int
    #: Number of lost probes.
    losses: int

    def is_bursty(self, margin: float = 0.05) -> bool:
        """True if losses are positively correlated (clp > ulp + margin)."""
        return self.clp > self.ulp + margin


def loss_indicator(trace: ProbeTrace) -> np.ndarray:
    """Loss sequence: 1 where the probe was lost, else 0."""
    return trace.lost.astype(int)


def loss_stats(trace: ProbeTrace) -> LossStats:
    """Compute ulp, clp, and plg for a trace."""
    lost = trace.lost
    n = len(lost)
    if n < 2:
        raise InsufficientDataError("need at least two probes")
    losses = int(lost.sum())
    ulp = losses / n
    predecessors = int(lost[:-1].sum())
    if predecessors == 0:
        clp = 0.0
    else:
        clp = float((lost[:-1] & lost[1:]).sum() / predecessors)
    plg = math.inf if clp >= 1.0 else 1.0 / (1.0 - clp)
    return LossStats(ulp=ulp, clp=clp, plg=plg, count=n, losses=losses)


def loss_runs(trace: ProbeTrace) -> list[int]:
    """Lengths of maximal runs of consecutive losses, in order."""
    runs = []
    current = 0
    for is_lost in trace.lost:
        if is_lost:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs


def loss_gap_distribution(trace: ProbeTrace) -> dict[int, int]:
    """Histogram of loss-run lengths: {run length: occurrences}."""
    histogram: dict[int, int] = {}
    for run in loss_runs(trace):
        histogram[run] = histogram.get(run, 0) + 1
    return histogram


def mean_loss_gap(trace: ProbeTrace) -> float:
    """Empirical mean run length; converges to plg for long traces."""
    runs = loss_runs(trace)
    if not runs:
        raise InsufficientDataError("no losses in trace")
    return float(np.mean(runs))


@dataclass
class GilbertModel:
    """A 2-state Markov (Gilbert) loss model.

    State G delivers, state B drops.  ``p`` is the G->B transition
    probability, ``q`` the B->G probability.
    """

    p: float
    q: float

    @property
    def stationary_loss(self) -> float:
        """Long-run loss probability p / (p + q)."""
        if self.p + self.q == 0:
            return 0.0
        return self.p / (self.p + self.q)

    @property
    def mean_burst_length(self) -> float:
        """Expected loss-run length 1/q."""
        return math.inf if self.q == 0 else 1.0 / self.q

    @property
    def conditional_loss(self) -> float:
        """P(loss | previous loss) = 1 - q."""
        return 1.0 - self.q

    def simulate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate a synthetic loss indicator sequence of length ``n``."""
        out = np.zeros(n, dtype=int)
        state_bad = rng.random() < self.stationary_loss
        for i in range(n):
            out[i] = 1 if state_bad else 0
            if state_bad:
                state_bad = rng.random() >= self.q
            else:
                state_bad = rng.random() < self.p
        return out


def fit_gilbert(trace: ProbeTrace) -> GilbertModel:
    """Maximum-likelihood Gilbert fit from transition counts."""
    lost = trace.lost
    if len(lost) < 2:
        raise InsufficientDataError("need at least two probes")
    prev, nxt = lost[:-1], lost[1:]
    good_prev = int((~prev).sum())
    bad_prev = int(prev.sum())
    g_to_b = int((~prev & nxt).sum())
    b_to_g = int((prev & ~nxt).sum())
    p = g_to_b / good_prev if good_prev else 0.0
    q = b_to_g / bad_prev if bad_prev else 1.0
    return GilbertModel(p=p, q=q)


@dataclass
class RunsTestResult:
    """Wald–Wolfowitz runs test on the loss indicator sequence."""

    #: Observed number of runs (alternations of loss / success blocks).
    runs: int
    #: Expected runs under independence.
    expected: float
    #: Normal test statistic.
    z: float
    #: Two-sided p-value.
    p_value: float

    def looks_random(self, alpha: float = 0.01) -> bool:
        """True if independence cannot be rejected at level ``alpha``."""
        return self.p_value >= alpha


def runs_test(trace: ProbeTrace) -> RunsTestResult:
    """Test whether losses occur independently (the paper's 'essentially
    random' claim for low probe rates)."""
    lost = trace.lost.astype(int)
    n1 = int(lost.sum())
    n0 = len(lost) - n1
    if n1 == 0 or n0 == 0:
        raise InsufficientDataError("runs test needs both losses and successes")
    runs = 1 + int(np.count_nonzero(np.diff(lost)))
    n = n0 + n1
    expected = 1.0 + 2.0 * n0 * n1 / n
    variance = (2.0 * n0 * n1 * (2.0 * n0 * n1 - n)) / (n * n * (n - 1.0))
    if variance <= 0:
        raise InsufficientDataError("degenerate runs-test variance")
    z = (runs - expected) / math.sqrt(variance)
    # sf(|z|) keeps precision in the far tail where 1 - cdf(|z|) rounds
    # to exactly 0.0 (|z| >~ 8), which would turn a strong rejection into
    # an apparent p = 0.
    p_value = 2.0 * stats.norm.sf(abs(z))
    return RunsTestResult(runs=runs, expected=expected, z=z,
                          p_value=float(p_value))
