"""Measurement helpers: counters, time-weighted averages, and sample traces.

These are the simulator-side instruments used to validate the network
substrate (e.g. that a queue's time-averaged occupancy matches M/D/1 theory)
and to drive ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.kernel import Simulator


class Counter:
    """A plain event counter with a rate helper."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        self.count = 0
        self._start = sim.now

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (default 1) to the count."""
        self.count += by

    def rate(self) -> float:
        """Events per second since the counter was created."""
        elapsed = self._sim.now - self._start
        if elapsed <= 0:
            return 0.0
        return self.count / elapsed


class TimeWeightedValue:
    """Tracks a piecewise-constant value and its time-weighted statistics.

    Typical use: queue occupancy.  Call :meth:`update` whenever the value
    changes; query :meth:`mean` at any time.
    """

    def __init__(self, sim: Simulator, initial: float = 0.0) -> None:
        self._sim = sim
        self._value = initial
        self._last_change = sim.now
        self._weighted_sum = 0.0
        self._start = sim.now
        self._max = initial
        self._min = initial

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def update(self, new_value: float) -> None:
        """Record that the tracked value changed to ``new_value`` now."""
        now = self._sim.now
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = new_value
        self._last_change = now
        self._max = max(self._max, new_value)
        self._min = min(self._min, new_value)

    def mean(self) -> float:
        """Time-weighted mean of the value since creation."""
        now = self._sim.now
        total = (now - self._start)
        if total <= 0:
            return self._value
        weighted = self._weighted_sum + self._value * (now - self._last_change)
        return weighted / total

    def maximum(self) -> float:
        """Largest value observed."""
        return self._max

    def minimum(self) -> float:
        """Smallest value observed."""
        return self._min


class SampleStats:
    """Streaming mean/variance/min/max over unweighted samples (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def add(self, sample: float) -> None:
        """Incorporate one sample."""
        self.count += 1
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)
        if self._min is None or sample < self._min:
            self._min = sample
        if self._max is None or sample > self._max:
            self._max = sample

    def mean(self) -> float:
        """Sample mean (0.0 if no samples)."""
        return self._mean if self.count else 0.0

    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance())

    def minimum(self) -> Optional[float]:
        """Smallest sample seen, or None if empty."""
        return self._min

    def maximum(self) -> Optional[float]:
        """Largest sample seen, or None if empty."""
        return self._max
