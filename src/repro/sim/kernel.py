"""The discrete-event simulator: clock, scheduling, and the run loop.

A :class:`Simulator` owns a single :class:`~repro.sim.events.EventQueue` and a
clock that only advances when events fire.  Components (links, queues,
traffic sources, probe agents) hold a reference to the simulator and schedule
their work through :meth:`Simulator.schedule` / :meth:`Simulator.call_at`.

The kernel is callback-based rather than coroutine-based: network components
are naturally event-driven (a packet arrives, a timer fires), callbacks keep
the hot path free of generator overhead, and determinism is easy to audit.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Optional, Protocol

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue
from repro.sim.random import RandomStreams


class KernelObserver(Protocol):
    """What the kernel needs from an attached tracer (see repro.obs).

    Observers are passive: the kernel feeds them one record per executed
    event and never reads anything back, so an attached observer cannot
    change the simulation's trajectory.
    """

    def on_event(self, time: float, label: str, priority: int,
                 wall_seconds: float) -> None:
        """Called after each event fires; ``wall_seconds`` is host CPU cost."""
        ...


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's named random streams.  Two simulators
        built with the same seed and the same scheduling sequence produce
        identical runs.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.call_at(2.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [2.5]
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._observer: Optional[KernelObserver] = None
        self.streams = RandomStreams(seed)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (diagnostics, ablations)."""
        return self._events_executed

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def observer(self) -> Optional[KernelObserver]:
        """The attached kernel observer, or None when tracing is off."""
        return self._observer

    def attach_observer(self, observer: KernelObserver) -> None:
        """Attach an event tracer (see :mod:`repro.obs`).

        The observer is consulted once per executed event with its simulated
        time, label, priority, and wall-clock cost.  It takes effect at the
        next :meth:`run` call; the untraced hot path is untouched while no
        observer is attached.
        """
        if self._observer is not None:
            raise SimulationError("an observer is already attached")
        self._observer = observer

    def detach_observer(self) -> None:
        """Remove the attached observer (no-op when none is attached)."""
        self._observer = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, action: Callable[[], Any],
                priority: int = DEFAULT_PRIORITY, label: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time``.

        Raises
        ------
        SchedulingError
            If ``time`` is in the past.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule {label or action!r} at t={time:.6f}; "
                f"clock is already at t={self._now:.6f}")
        return self._queue.push(time, action, priority=priority, label=label)

    def schedule(self, delay: float, action: Callable[[], Any],
                 priority: int = DEFAULT_PRIORITY, label: str = "") -> Event:
        """Schedule ``action`` after a relative ``delay`` (seconds)."""
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule {label or action!r} with negative delay "
                f"{delay:.6f}")
        return self._queue.push(self._now + delay, action,
                                priority=priority, label=label)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Execute events until the queue empties or the clock hits ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if the queue drained earlier, so repeated ``run(until=...)`` calls
        advance time monotonically.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        # The observer is bound once per run() call: the untraced loop stays
        # the seed-identical hot path, and the traced loop differs only by
        # wall-clock bookkeeping around event.action() — simulated state
        # (clock, queue, streams) is advanced identically in both.
        observer = self._observer
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                assert event is not None  # peek_time said there was one
                self._now = event.time
                self._events_executed += 1
                if observer is None:
                    event.action()
                else:
                    started = perf_counter()
                    event.action()
                    observer.on_event(event.time, event.label,
                                      event.priority,
                                      perf_counter() - started)
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)
