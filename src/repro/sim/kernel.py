"""The discrete-event simulator: clock, scheduling, and the run loop.

A :class:`Simulator` owns a single :class:`~repro.sim.events.EventQueue` and a
clock that only advances when events fire.  Components (links, queues,
traffic sources, probe agents) hold a reference to the simulator and schedule
their work through :meth:`Simulator.schedule` / :meth:`Simulator.call_at`.

The kernel is callback-based rather than coroutine-based: network components
are naturally event-driven (a packet arrives, a timer fires), callbacks keep
the hot path free of generator overhead, and determinism is easy to audit.

The run loop is the single hottest function in the repository.  It pops the
next live event straight off the queue's heap (one traversal, not the
``peek_time()`` + ``pop()`` pair the public API offers) with the heap and
``heappop`` bound to locals; per-event work is limited to the cancelled-skip,
the ``until`` bound check, the clock store, the counter bump, and the
callback itself.  Both invariants the rest of the tree leans on are
preserved: same seed ⇒ bit-identical event order, and an attached observer
changes nothing but wall-clock bookkeeping.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Optional, Protocol

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue
from repro.sim.random import RandomStreams

_INF = float("inf")

#: Allocate an Event without running ``Event.__init__`` (the scheduling
#: fast path sets every slot itself).
_new_event = Event.__new__


class KernelObserver(Protocol):
    """What the kernel needs from an attached tracer (see repro.obs).

    Observers are passive: the kernel feeds them one record per executed
    event and never reads anything back, so an attached observer cannot
    change the simulation's trajectory.
    """

    def on_event(self, time: float, label: str, priority: int,
                 wall_seconds: float) -> None:
        """Called after each event fires; ``wall_seconds`` is host CPU cost."""
        ...


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's named random streams.  Two simulators
        built with the same seed and the same scheduling sequence produce
        identical runs.

    Constructing a simulator also resets the packet-uid counter (see
    :func:`repro.net.packet.reset_packet_uids`), so the uids recorded by
    packet-lifecycle tracers depend only on the cell being simulated, never
    on what ran earlier in the same process.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.call_at(2.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [2.5]
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._observer: Optional[KernelObserver] = None
        self.streams = RandomStreams(seed)
        # Local import: repro.net depends on repro.sim, so the kernel must
        # not import the net package at module level.
        from repro.net.packet import reset_packet_uids
        reset_packet_uids()

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (diagnostics, ablations).

        Updated when :meth:`run` returns, not per event — read it between
        runs, not from inside an event callback.
        """
        return self._events_executed

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def observer(self) -> Optional[KernelObserver]:
        """The attached kernel observer, or None when tracing is off."""
        return self._observer

    def attach_observer(self, observer: KernelObserver) -> None:
        """Attach an event tracer (see :mod:`repro.obs`).

        The observer is consulted once per executed event with its simulated
        time, label, priority, and wall-clock cost.  It takes effect at the
        next :meth:`run` call; the untraced hot path is untouched while no
        observer is attached.
        """
        if self._observer is not None:
            raise SimulationError("an observer is already attached")
        self._observer = observer

    def detach_observer(self) -> None:
        """Remove the attached observer (no-op when none is attached)."""
        self._observer = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, action: Callable[[], Any],
                priority: int = DEFAULT_PRIORITY, label: str = "") -> Event:
        """Schedule ``action`` at absolute time ``time``.

        Raises
        ------
        SchedulingError
            If ``time`` is in the past, NaN, or infinite.  Non-finite times
            would silently corrupt the heap ordering (NaN compares false
            against everything), so they are rejected up front.
        """
        # One chained comparison covers all three rejects: a NaN fails both
        # sides, +inf fails the right, and -inf / the past fail the left.
        if not self._now <= time < _INF:
            if time != time or time in (_INF, -_INF):
                raise SchedulingError(
                    f"cannot schedule {label or action!r} at non-finite "
                    f"t={time!r}")
            raise SchedulingError(
                f"cannot schedule {label or action!r} at t={time:.6f}; "
                f"clock is already at t={self._now:.6f}")
        # EventQueue.push, inlined down to the allocation: scheduling
        # happens once per event, so the push() and Event.__init__ call
        # frames are both measurable (see DESIGN.md, "Hot path").  The
        # field stores must mirror Event.__init__ exactly.
        queue = self._queue
        event = _new_event(Event)
        event.time = time
        event.priority = priority
        event.sequence = next(queue._counter)
        event.action = action
        event.label = label
        event.cancelled = False
        event._owner = queue
        heappush(queue._heap, event)
        queue._live += 1
        return event

    def schedule(self, delay: float, action: Callable[[], Any],
                 priority: int = DEFAULT_PRIORITY, label: str = "") -> Event:
        """Schedule ``action`` after a relative ``delay`` (seconds).

        Raises
        ------
        SchedulingError
            If ``delay`` is negative, NaN, or infinite.
        """
        if not 0.0 <= delay < _INF:
            if delay != delay or delay == _INF:
                raise SchedulingError(
                    f"cannot schedule {label or action!r} with non-finite "
                    f"delay {delay!r}")
            raise SchedulingError(
                f"cannot schedule {label or action!r} with negative delay "
                f"{delay:.6f}")
        # EventQueue.push, inlined down to the allocation (see call_at).
        queue = self._queue
        event = _new_event(Event)
        event.time = self._now + delay
        event.priority = priority
        event.sequence = next(queue._counter)
        event.action = action
        event.label = label
        event.cancelled = False
        event._owner = queue
        heappush(queue._heap, event)
        queue._live += 1
        return event

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Execute events until the queue empties or the clock hits ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if the queue drained earlier, so repeated ``run(until=...)`` calls
        advance time monotonically.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        # The observer is bound once per run() call: the untraced loop stays
        # the seed-identical hot path, and the traced loop differs only by
        # wall-clock bookkeeping around event.action() — simulated state
        # (clock, queue, streams) is advanced identically in both.
        observer = self._observer
        # Hot locals: the heap and heappop are bound once; actions mutate
        # the heap in place (push/cancel), never rebind it.
        queue = self._queue
        heap = queue._heap
        pop = heappop
        # Scheduling rejects non-finite times, so every live event's time is
        # strictly below +inf and an unbounded run needs no separate branch.
        limit = _INF if until is None else until
        # Executed events are counted in a local and folded into
        # self._events_executed and the queue's live counter when the loop
        # exits: both are between-runs diagnostics (events_executed,
        # pending_events), and no action reads them mid-run.
        executed = 0
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    pop(heap)
                    continue
                if event.time > limit:
                    break
                pop(heap)
                event._owner = None
                self._now = event.time
                executed += 1
                if observer is None:
                    event.action()
                else:
                    # Observer wall-cost profiling: measures host time per
                    # event for the tracer, never enters simulated time.
                    started = perf_counter()  # repro: noqa[FLOW001]
                    event.action()
                    observer.on_event(event.time, event.label,
                                      event.priority,
                                      perf_counter() - started)  # repro: noqa[FLOW001]
                if self._stopped:
                    break
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._events_executed += executed
            queue._live -= executed
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of live events still scheduled.

        Exact between :meth:`run` calls; from inside an event callback the
        count may still include events this run has already executed.
        """
        return len(self._queue)
