"""Named, independently seeded random streams for reproducible simulations.

Every stochastic component asks the simulator for a stream by name
(``sim.streams.get("traffic.ftp.fwd")``).  Streams with different names are
statistically independent (seeded via ``numpy.random.SeedSequence`` spawning
keyed on the name), and the *same* name always yields the *same* stream for a
given master seed.  This means adding a new random component never perturbs
the draws seen by existing components — the property that makes A/B ablation
runs comparable.

Batched draws
-------------
Per-call scalar draws (``rng.exponential(scale)``) pay numpy's full call
overhead for one value.  :meth:`RandomStreams.draws` returns a
:class:`BatchedDraws` layer that serves scalars from numpy blocks drawn in
one call and refilled on demand — with the load-bearing guarantee that the
*value sequence is bit-identical to per-call scalar draws* on the same
stream (``tests/sim/test_random_batched.py`` pins this property):

* numpy ``Generator`` array draws advance the bit generator exactly as the
  same number of scalar draws would, and produce the same values;
* a block is prefetched only after the request pattern proves homogeneous
  (the block for a distribution grows 1 → 2 → 4 → ... → ``block`` only
  while consecutive requests keep hitting the same distribution/parameters);
* when a request for a *different* distribution arrives while prefetched
  values remain, the layer rewinds the bit generator to the block's start
  state and fast-forwards over exactly the values already served, so the
  underlying generator is never observably ahead of the request sequence.

Mixing layers on one stream is safe at hand-off points:
:meth:`RandomStreams.get` flushes the name's batched layer (if any) before
returning the raw generator.  Holding a raw generator *and* drawing through
the batched layer concurrently on the same name is not supported.
"""

from __future__ import annotations

import zlib
from typing import Dict, Tuple

import numpy as np

#: Largest prefetch block; ~8 KiB of float64 per stream at the default.
DEFAULT_BLOCK = 1024

#: Distribution tags used in block keys.
_EXPONENTIAL = "exponential"
_RANDOM = "random"
_GEOMETRIC = "geometric"

#: A block key: distribution tag plus its scalar parameters.
_Kind = Tuple


class BatchedDraws:
    """Scalar draws served from prefetched numpy blocks, sequence-exact.

    One instance wraps one named stream's ``numpy.random.Generator``.  All
    methods return Python scalars, exactly the values per-call scalar draws
    on the same generator would have returned, in the same order.
    """

    __slots__ = ("_gen", "_bitgen", "_max_block", "_kind", "_values",
                 "_size", "_cursor", "_state0", "_block_of")

    def __init__(self, generator: np.random.Generator,
                 block: int = DEFAULT_BLOCK) -> None:
        self._gen = generator
        self._bitgen = generator.bit_generator
        self._max_block = int(block)
        self._kind: _Kind = None  # kind of the current/last block
        self._values = None       # prefetched block (None when size <= 1)
        self._size = 0            # current block length
        self._cursor = 0          # values served from the current block
        self._state0 = None       # bit-generator state at block start
        self._block_of: Dict[_Kind, int] = {}  # kind -> last block size

    # ------------------------------------------------------------------
    # Draw API (mirrors the numpy Generator methods the traffic layer uses)
    # ------------------------------------------------------------------
    def exponential(self, scale: float) -> float:
        """One exponential draw with mean ``scale``."""
        kind = (_EXPONENTIAL, scale)
        if kind == self._kind and self._cursor < self._size:
            value = self._values[self._cursor]
            self._cursor += 1
            return float(value)
        return float(self._refill(kind))

    def random(self) -> float:
        """One uniform draw in [0, 1)."""
        if self._kind is not None and self._kind[0] == _RANDOM \
                and self._cursor < self._size:
            value = self._values[self._cursor]
            self._cursor += 1
            return float(value)
        return float(self._refill((_RANDOM,)))

    def geometric(self, p: float) -> int:
        """One geometric draw (number of trials until first success)."""
        kind = (_GEOMETRIC, p)
        if kind == self._kind and self._cursor < self._size:
            value = self._values[self._cursor]
            self._cursor += 1
            return int(value)
        return int(self._refill(kind))

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    def _draw_block(self, kind: _Kind, n: int) -> np.ndarray:
        tag = kind[0]
        if tag == _EXPONENTIAL:
            return self._gen.exponential(kind[1], n)
        if tag == _RANDOM:
            return self._gen.random(n)
        if tag == _GEOMETRIC:
            return self._gen.geometric(kind[1], n)
        raise AssertionError(f"unknown draw kind {kind!r}")

    def _draw_scalar(self, kind: _Kind):
        tag = kind[0]
        if tag == _EXPONENTIAL:
            return self._gen.exponential(kind[1])
        if tag == _RANDOM:
            return self._gen.random()
        if tag == _GEOMETRIC:
            return self._gen.geometric(kind[1])
        raise AssertionError(f"unknown draw kind {kind!r}")

    def _refill(self, kind: _Kind):
        """Start a new block for ``kind`` and serve its first value."""
        previous = self._kind
        if previous is not None and self._cursor < self._size:
            # Prefetched values of another kind remain: rewind to the
            # block's start state and fast-forward over exactly the values
            # already served, so the generator sits where per-call scalar
            # draws would have left it.  The interrupted kind restarts from
            # an unprefetched block (its pattern is proven non-homogeneous).
            self._bitgen.state = self._state0
            self._draw_block(previous, self._cursor)
            self._block_of[previous] = 1
        if kind == previous:
            # Consecutive same-kind requests: grow the prefetch, doubling up
            # to the cap.  (A flush above implies kind != previous, so a
            # grown block never follows a waste event for the same kind.)
            size = min(self._max_block, self._block_of.get(kind, 1) * 2)
        else:
            size = 1
        self._block_of[kind] = size
        self._kind = kind
        self._size = size
        self._cursor = 1
        if size == 1:
            # Not worth an array round-trip; a scalar draw advances the
            # generator identically and leaves nothing to rewind.
            self._values = None
            self._state0 = None
            return self._draw_scalar(kind)
        self._state0 = self._bitgen.state
        self._values = self._draw_block(kind, size)
        return self._values[0]

    def flush(self) -> None:
        """Discard prefetched values, restoring per-call generator state.

        After a flush the underlying generator's state is exactly what
        per-call scalar draws of the served sequence would have produced, so
        the raw generator can be used directly.
        """
        if self._kind is not None and self._cursor < self._size:
            self._bitgen.state = self._state0
            self._draw_block(self._kind, self._cursor)
            self._block_of[self._kind] = 1
        self._kind = None
        self._values = None
        self._size = 0
        self._cursor = 0
        self._state0 = None

    @property
    def pending(self) -> int:
        """Prefetched values not yet served (0 right after a flush)."""
        if self._kind is None:
            return 0
        return self._size - self._cursor

    def __repr__(self) -> str:
        return (f"<BatchedDraws kind={self._kind!r} "
                f"{self.pending} prefetched>")


class RandomStreams:
    """A registry of named ``numpy.random.Generator`` instances."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._batched: dict[str, BatchedDraws] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was built from."""
        return self._seed

    def _generator(self, name: str) -> np.random.Generator:
        if name not in self._streams:
            name_key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(name_key,))
            self._streams[name] = np.random.Generator(
                np.random.PCG64(sequence))
        return self._streams[name]

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-stream seed is derived from the master seed and a stable
        hash of the name, so it does not depend on creation order.  If a
        batched layer exists for ``name`` its prefetch is flushed first, so
        the returned generator's state reflects exactly the draws served so
        far.
        """
        batched = self._batched.get(name)
        if batched is not None:
            batched.flush()
        return self._generator(name)

    def draws(self, name: str, block: int = DEFAULT_BLOCK) -> BatchedDraws:
        """Return the batched-draw layer for ``name`` (created on first use).

        The same :class:`BatchedDraws` instance is returned for a given
        name, so all users of a stream share one prefetch cursor.
        """
        if name not in self._batched:
            self._batched[name] = BatchedDraws(self._generator(name), block)
        return self._batched[name]

    def names(self) -> list[str]:
        """Names of streams created so far, in creation order."""
        return list(self._streams)
