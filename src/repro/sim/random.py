"""Named, independently seeded random streams for reproducible simulations.

Every stochastic component asks the simulator for a stream by name
(``sim.streams.get("traffic.ftp.fwd")``).  Streams with different names are
statistically independent (seeded via ``numpy.random.SeedSequence`` spawning
keyed on the name), and the *same* name always yields the *same* stream for a
given master seed.  This means adding a new random component never perturbs
the draws seen by existing components — the property that makes A/B ablation
runs comparable.
"""

from __future__ import annotations

import zlib

import numpy as np


class RandomStreams:
    """A registry of named ``numpy.random.Generator`` instances."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-stream seed is derived from the master seed and a stable
        hash of the name, so it does not depend on creation order.
        """
        if name not in self._streams:
            name_key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(name_key,))
            self._streams[name] = np.random.Generator(
                np.random.PCG64(sequence))
        return self._streams[name]

    def names(self) -> list[str]:
        """Names of streams created so far, in creation order."""
        return list(self._streams)
