"""Discrete-event simulation kernel.

The kernel is deliberately small: an event heap with deterministic
tie-breaking (:mod:`repro.sim.events`), a simulator clock and run loop
(:mod:`repro.sim.kernel`), named reproducible random streams
(:mod:`repro.sim.random`), and measurement instruments
(:mod:`repro.sim.monitor`).
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.monitor import Counter, SampleStats, TimeWeightedValue
from repro.sim.random import RandomStreams

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Counter",
    "SampleStats",
    "TimeWeightedValue",
    "RandomStreams",
]
