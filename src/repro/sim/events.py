"""Event objects and the pending-event queue of the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
a monotonically increasing counter assigned at scheduling time, which makes
the execution order of simultaneous events deterministic (FIFO within the
same time and priority) and therefore makes whole simulations reproducible
from a seed.

``Event`` is a hand-written ``__slots__`` class rather than a dataclass: the
kernel creates one instance per scheduled callback and the heap compares
events on every sift, so field access and ``__lt__`` are the hottest code in
the simulator.  The generated ``order=True`` comparator would build a
``(time, priority, sequence)`` tuple on *both* sides of every comparison;
the hand-written one short-circuits on ``time`` (almost always decisive)
without allocating.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, Optional

#: Default event priority.  Lower values run first at equal timestamps.
DEFAULT_PRIORITY = 0


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Tie-breaker among events scheduled for the same time; lower runs
        first.
    sequence:
        Scheduling-order counter; final tie-breaker, guarantees determinism.
    action:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag used in error messages and tracing.
    """

    __slots__ = ("time", "priority", "sequence", "action", "label",
                 "cancelled", "_owner")

    def __init__(self, time: float, priority: int, sequence: int,
                 action: Callable[[], Any], label: str = "") -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = False
        #: Queue the event is pending in; cleared once popped, cancelled, or
        #: dropped, so cancellation bookkeeping happens exactly once.
        self._owner: Optional["EventQueue"] = None

    def __lt__(self, other: "Event") -> bool:
        # Hot path: called on every heap sift.  Short-circuit on time; ties
        # fall through to priority then the deterministic sequence number.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time == other.time and self.priority == other.priority
                and self.sequence == other.sequence)

    # Ordered-and-mutable, like the dataclass(order=True) it replaces.
    __hash__ = None  # type: ignore[assignment]

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it is popped."""
        if self.cancelled:
            return
        self.cancelled = True
        owner, self._owner = self._owner, None
        if owner is not None:
            owner._notify_cancelled()

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return (f"Event(time={self.time!r}, priority={self.priority!r}, "
                f"sequence={self.sequence!r}, label={self.label!r}{state})")


class EventQueue:
    """A binary-heap pending-event set with lazy cancellation.

    Cancelled events stay in the heap and are discarded when popped; this
    keeps :meth:`cancel` O(1) at the cost of transient heap growth, which is
    the right trade-off for timer-heavy network simulations.  A live-event
    counter is maintained across ``push``/``pop``/``cancel``/``clear`` so
    ``len(queue)`` (and :meth:`Simulator.pending_events`) is O(1) instead of
    a per-call heap scan.
    """

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter: Iterator[int] = itertools.count()
        self._live: int = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def _notify_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`, exactly once."""
        self._live -= 1

    def push(self, time: float, action: Callable[[], Any],
             priority: int = DEFAULT_PRIORITY, label: str = "") -> Event:
        """Add an event and return a handle that supports ``cancel()``."""
        event = Event(time, priority, next(self._counter), action, label)
        event._owner = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                event._owner = None
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        for event in self._heap:
            event._owner = None
        self._heap.clear()
        self._live = 0
