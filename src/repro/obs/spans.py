"""Hierarchical wall-clock spans: where a campaign's host time goes.

A :class:`SpanTracer` records nested *spans* — named intervals of host
wall-clock time, each tagged with a phase (``campaign``, ``cell``,
``setup``, ``sim``, ``analysis``, ``cache``, ``merge``, and for warm-pool
campaigns ``lease``/``shm``) and, for per-cell work, the cell key it
belongs to.  Campaign workers
(:func:`repro.experiments.campaign._run_cell`) time their phases with one
tracer per process and append the records to a per-worker JSONL file
(:func:`append_spans`); the parent reads every worker file back
(:func:`read_span_dir`), merges its own orchestration spans in grid order
(:func:`merge_spans`), summarizes phase totals into the ``timing.json``
sidecar (:func:`summarize_spans`), and exports the whole campaign as one
Chrome ``trace_event`` flame graph
(:func:`repro.obs.export.write_chrome_trace` with ``spans=``) — one lane
per worker process, nesting by containment.

Spans are **execution telemetry**, in the same class as the
``timing.json`` sidecar: wall clocks are inherently non-deterministic, so
span records live in their own files and the sidecar, never in
``manifest.json``, summary tables, or trace CSVs — enabling spans leaves
every deterministic artifact byte-identical (DESIGN.md's
zero-perturbation invariant, extended to campaign telemetry).  With spans
disabled no tracer exists and no file is touched.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

# Host-side telemetry needs an epoch clock so spans recorded by different
# worker processes land on one comparable timeline.  The timestamps are
# quarantined in span files / timing.json and never feed simulated time
# (the byte-identity tests in tests/experiments enforce this); the call
# sites below carry the matching DET001/FLOW001 suppressions.
from time import time as _wall_clock

from repro.errors import ConfigurationError

PathLike = Union[str, Path]

#: Phase vocabulary (free-form strings are allowed; these are the ones the
#: campaign emits and the timing.json summary groups by).
PHASE_CAMPAIGN = "campaign"
PHASE_CELL = "cell"
PHASE_SETUP = "setup"
PHASE_SIM = "sim"
PHASE_ANALYSIS = "analysis"
PHASE_CACHE = "cache"
PHASE_MERGE = "merge"
#: Lease-pipeline phases (warm-pool campaigns): a worker serving one lease
#: batch, and the shared-memory publish of its trace columns.
PHASE_LEASE = "lease"
PHASE_SHM = "shm"
#: Analytic fast-forward cross-traffic replay: building one seed's
#: CrossReplay streams (memo misses only; hits cost no span).
PHASE_REPLAY = "replay"

#: Per-worker span file pattern inside a span directory.
_WORKER_FILE_PREFIX = "spans-w"
#: The parent's merged, grid-ordered span log.
MERGED_SPAN_FILE = "spans.jsonl"
#: The parent's Chrome trace_event export of the merged spans.
CHROME_SPAN_FILE = "trace.json"


class SpanRecord:
    """One completed span: a named wall-clock interval with context.

    A slotted value object (campaigns record a handful per cell, but the
    format is shared with finer-grained tracers).

    Attributes
    ----------
    name:
        Human-readable label (``"cell d50_s1"``, ``"sim"``, ...).
    phase:
        Phase tag grouping spans of the same kind across cells
        (``PHASE_SIM``, ``PHASE_CACHE``, ...).
    start:
        Wall-clock start, seconds since the epoch (comparable across
        processes on one host).
    duration:
        Wall-clock length, seconds.
    pid:
        Operating-system process id of the recorder (one flame-graph lane
        per worker process).
    worker:
        Recorder label (``"main"`` for the campaign parent, ``"w<pid>"``
        for pool workers).
    cell:
        Cell key (``"d50_s1"``) for per-cell spans, ``""`` for
        campaign-level ones.
    depth:
        Nesting depth at entry (0 = top-level span of its tracer).
    """

    __slots__ = ("name", "phase", "start", "duration", "pid", "worker",
                 "cell", "depth")

    def __init__(self, name: str, phase: str, start: float, duration: float,
                 pid: int, worker: str, cell: str = "",
                 depth: int = 0) -> None:
        self.name = name
        self.phase = phase
        self.start = start
        self.duration = duration
        self.pid = pid
        self.worker = worker
        self.cell = cell
        self.depth = depth

    def _key(self) -> tuple:
        return (self.name, self.phase, self.start, self.duration, self.pid,
                self.worker, self.cell, self.depth)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"SpanRecord(name={self.name!r}, phase={self.phase!r}, "
                f"start={self.start!r}, duration={self.duration!r}, "
                f"pid={self.pid!r}, worker={self.worker!r}, "
                f"cell={self.cell!r}, depth={self.depth!r})")

    def as_dict(self) -> dict:
        """JSON-serializable form (one JSONL row)."""
        return {"name": self.name, "phase": self.phase, "start": self.start,
                "duration": self.duration, "pid": self.pid,
                "worker": self.worker, "cell": self.cell,
                "depth": self.depth}

    @classmethod
    def from_dict(cls, row: dict) -> "SpanRecord":
        """Rebuild a record from its :meth:`as_dict` form."""
        return cls(name=row["name"], phase=row["phase"], start=row["start"],
                   duration=row["duration"], pid=row["pid"],
                   worker=row["worker"], cell=row.get("cell", ""),
                   depth=row.get("depth", 0))


class SpanTracer:
    """Records nested spans for one process.

    Spans open with the :meth:`span` context manager; nesting is tracked
    with a stack, so a child span inherits the enclosing span's cell key
    unless it names its own.  Records are appended on span *exit* (a
    crashed span never produces a half-record).

    Examples
    --------
    >>> tracer = SpanTracer(worker="main")
    >>> with tracer.span("cell d50_s1", phase="cell", cell="d50_s1"):
    ...     with tracer.span("sim", phase="sim"):
    ...         pass
    >>> [(s.name, s.depth, s.cell) for s in tracer.records]
    [('sim', 1, 'd50_s1'), ('cell d50_s1', 0, 'd50_s1')]
    """

    def __init__(self, worker: Optional[str] = None) -> None:
        self.pid = os.getpid()
        self.worker = worker if worker is not None else f"w{self.pid}"
        self.records: List[SpanRecord] = []
        self._cell_stack: List[str] = []

    @contextmanager
    def span(self, name: str, phase: str = "",
             cell: str = "") -> Iterator[None]:
        """Time one named interval; records on exit, even on error."""
        effective_cell = cell or (self._cell_stack[-1]
                                  if self._cell_stack else "")
        depth = len(self._cell_stack)
        self._cell_stack.append(effective_cell)
        started = _wall_clock()  # repro: noqa[DET001,FLOW001]
        try:
            yield
        finally:
            self._cell_stack.pop()
            self.records.append(SpanRecord(
                name=name, phase=phase, start=started,
                duration=_wall_clock() - started,  # repro: noqa[DET001,FLOW001]
                pid=self.pid,
                worker=self.worker, cell=effective_cell, depth=depth))

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (f"<SpanTracer {self.worker} pid={self.pid} "
                f"{len(self.records)} spans>")


# ----------------------------------------------------------------------
# Per-worker files and the parent-side merge
# ----------------------------------------------------------------------
def worker_span_path(span_dir: PathLike, pid: Optional[int] = None) -> Path:
    """This process's span file inside ``span_dir``.

    Worker identity is the OS pid: every pool worker is its own process,
    so per-pid files never contend, and the serial path (parent runs the
    cells itself) lands in the parent's own file.
    """
    pid = os.getpid() if pid is None else pid
    return Path(span_dir) / f"{_WORKER_FILE_PREFIX}{pid}.jsonl"


def append_spans(span_dir: PathLike,
                 records: Sequence[SpanRecord]) -> Path:
    """Append records to this process's per-worker span file."""
    path = worker_span_path(span_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        for record in records:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
    return path


def read_span_dir(span_dir: PathLike) -> List[SpanRecord]:
    """Every record from every per-worker span file, file-sorted.

    Files are visited in sorted name order so the read is deterministic
    for a fixed set of files; callers wanting campaign order run the
    result through :func:`merge_spans`.
    """
    records: List[SpanRecord] = []
    for path in sorted(Path(span_dir).glob(f"{_WORKER_FILE_PREFIX}*.jsonl")):
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records


def clear_worker_files(span_dir: PathLike) -> int:
    """Delete per-worker span files (after a merge); returns the count."""
    removed = 0
    for path in sorted(Path(span_dir).glob(f"{_WORKER_FILE_PREFIX}*.jsonl")):
        path.unlink()
        removed += 1
    return removed


def merge_spans(records: Sequence[SpanRecord],
                grid_keys: Sequence[str]) -> List[SpanRecord]:
    """Order spans the way the campaign is defined, not the way it ran.

    Campaign-level spans (no cell key) come first by start time; per-cell
    spans follow in *grid* order — the (δ, seed) order of the spec, which
    is stable across worker counts, completion order, and cache hits —
    each cell's spans innermost-first is not needed, so within a cell
    records sort by (start, depth).  Cells not in ``grid_keys`` (foreign
    records) sort after the grid, by key.
    """
    order: Dict[str, int] = {key: index
                             for index, key in enumerate(grid_keys)}

    def sort_key(record: SpanRecord) -> tuple:
        if not record.cell:
            return (0, 0, "", record.start, record.depth)
        rank = order.get(record.cell)
        if rank is None:
            return (2, 0, record.cell, record.start, record.depth)
        return (1, rank, "", record.start, record.depth)

    return sorted(records, key=sort_key)


def summarize_spans(records: Sequence[SpanRecord]) -> Dict[str, dict]:
    """Per-phase aggregate for the ``timing.json`` sidecar.

    Returns ``{phase: {"count", "total_seconds", "max_seconds"}}`` with
    phases sorted by name; unlabeled phases group under ``"other"``.
    """
    phases: Dict[str, Dict[str, float]] = {}
    for record in records:
        phase = record.phase or "other"
        entry = phases.setdefault(phase, {"count": 0, "total_seconds": 0.0,
                                          "max_seconds": 0.0})
        entry["count"] += 1
        entry["total_seconds"] += record.duration
        if record.duration > entry["max_seconds"]:
            entry["max_seconds"] = record.duration
    return {phase: phases[phase] for phase in sorted(phases)}


def resolve_span_dir(spans: Union[bool, PathLike, None],
                     output_dir: Optional[PathLike]) -> Optional[Path]:
    """Where span telemetry goes, or None when disabled.

    ``spans=True`` places the span directory next to the campaign's
    deterministic artifacts (``<output_dir>/spans``) — so it needs an
    output directory; an explicit path is used as-is.
    """
    if spans is None or spans is False:
        return None
    if spans is True:
        if output_dir is None:
            raise ConfigurationError(
                "spans=True needs an output_dir to place the span "
                "directory in; pass an explicit span directory instead")
        return Path(output_dir) / "spans"
    return Path(spans)
