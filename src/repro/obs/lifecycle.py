"""Packet-lifecycle tracing: every hop of every packet, reconstructable.

A :class:`PacketLifecycleTracer` installs itself as the ``lifecycle``
observer of every node, interface, and queue of a built network (see
:mod:`repro.net.hooks`) and records one :class:`HopRecord` per milestone:
``created``, ``enqueued`` (with queue occupancy), ``queue_drop``,
``tx_start``, ``tx_done``, ``fault_drop``, ``delivered``, ``received``.
From those records any packet's full path — which queue it waited in, what
it was compressed behind, where it died — can be reconstructed with
:meth:`PacketLifecycleTracer.path` and joined against
:class:`~repro.netdyn.trace.ProbeTrace` rows via :func:`probe_uids`.

Like every observer in :mod:`repro.obs`, the tracer only records: it never
schedules events, draws randomness, or mutates packets, so enabling it
leaves all simulated timestamps bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.net.packet import KIND_UDP

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.net.link import Interface
    from repro.net.node import Node
    from repro.net.packet import Packet
    from repro.net.queue import DropTailQueue
    from repro.net.routing import Network

#: Milestone names, in the order a surviving packet meets them per hop.
EVENT_CREATED = "created"
EVENT_ENQUEUED = "enqueued"
EVENT_QUEUE_DROP = "queue_drop"
EVENT_TX_START = "tx_start"
EVENT_TX_DONE = "tx_done"
EVENT_FAULT_DROP = "fault_drop"
EVENT_DELIVERED = "delivered"
EVENT_RECEIVED = "received"

#: Milestones that terminate a packet's life.
TERMINAL_EVENTS = frozenset({EVENT_QUEUE_DROP, EVENT_FAULT_DROP,
                             EVENT_RECEIVED})


class HopRecord:
    """One packet milestone.

    A slotted immutable-by-convention value object (several are allocated
    per packet per hop while tracing, so instance size matters).

    Attributes
    ----------
    time:
        Simulated time of the milestone, seconds.
    uid:
        The packet's unique id within its simulation (uids restart at 1 per
        :class:`~repro.sim.kernel.Simulator`).
    event:
        One of the ``EVENT_*`` milestone names.
    place:
        Where it happened: node name, or the interface/queue label
        (``"a->b"``).
    kind:
        The packet kind (``"udp"``, ``"icmp_echo"``, ...).
    src, dst:
        The packet's original sender and final destination.
    queue_len:
        Queue occupancy in packets *after* the milestone, for ``enqueued``
        (includes the packet itself) and ``queue_drop`` (the full buffer the
        packet bounced off); -1 elsewhere.
    """

    __slots__ = ("time", "uid", "event", "place", "kind", "src", "dst",
                 "queue_len")

    def __init__(self, time: float, uid: int, event: str, place: str,
                 kind: str, src: str, dst: str, queue_len: int = -1) -> None:
        self.time = time
        self.uid = uid
        self.event = event
        self.place = place
        self.kind = kind
        self.src = src
        self.dst = dst
        self.queue_len = queue_len

    def _key(self) -> tuple:
        return (self.time, self.uid, self.event, self.place, self.kind,
                self.src, self.dst, self.queue_len)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HopRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"HopRecord(time={self.time!r}, uid={self.uid!r}, "
                f"event={self.event!r}, place={self.place!r}, "
                f"kind={self.kind!r}, src={self.src!r}, dst={self.dst!r}, "
                f"queue_len={self.queue_len!r})")

    def as_dict(self) -> dict:
        """JSON-serializable form (one JSONL row)."""
        return {"time": self.time, "uid": self.uid, "event": self.event,
                "place": self.place, "kind": self.kind, "src": self.src,
                "dst": self.dst, "queue_len": self.queue_len}


class PacketLifecycleTracer:
    """Records hop milestones for every packet crossing a network.

    Parameters
    ----------
    network:
        A built network; the tracer hooks every node, interface, and queue.
    kinds:
        Optional filter: record only these packet kinds (``None`` = all).

    Use :meth:`close` to unhook; records stay available afterwards.
    """

    def __init__(self, network: "Network",
                 kinds: Optional[Sequence[str]] = None) -> None:
        self.network = network
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.records: List[HopRecord] = []
        self._by_uid: Dict[int, List[HopRecord]] = {}
        self._attached = False
        self.attach()

    # ------------------------------------------------------------------
    # Hook management
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Install this tracer on every component of the network."""
        if self._attached:
            return
        for node in self.network.nodes.values():
            node.lifecycle = self
            for interface in node.interfaces.values():
                interface.lifecycle = self
                interface.queue.lifecycle = self
        self._attached = True

    def close(self) -> None:
        """Unhook from the network; recorded history stays available."""
        if not self._attached:
            return
        for node in self.network.nodes.values():
            node.lifecycle = None
            for interface in node.interfaces.values():
                interface.lifecycle = None
                interface.queue.lifecycle = None
        self._attached = False

    # ------------------------------------------------------------------
    # LifecycleObserver interface (called by net components)
    # ------------------------------------------------------------------
    def _record(self, packet: "Packet", event: str, place: str,
                queue_len: int = -1) -> None:
        if self.kinds is not None and packet.kind not in self.kinds:
            return
        record = HopRecord(time=self.network.sim.now, uid=packet.uid,
                           event=event, place=place, kind=packet.kind,
                           src=packet.src, dst=packet.dst,
                           queue_len=queue_len)
        self.records.append(record)
        self._by_uid.setdefault(packet.uid, []).append(record)

    def on_created(self, node: "Node", packet: "Packet") -> None:
        self._record(packet, EVENT_CREATED, node.name)

    def on_enqueued(self, queue: "DropTailQueue", packet: "Packet") -> None:
        self._record(packet, EVENT_ENQUEUED, queue.name,
                     queue_len=len(queue))

    def on_queue_drop(self, queue: "DropTailQueue",
                      packet: "Packet") -> None:
        self._record(packet, EVENT_QUEUE_DROP, queue.name,
                     queue_len=len(queue))

    def on_tx_start(self, interface: "Interface", packet: "Packet") -> None:
        self._record(packet, EVENT_TX_START, interface.name)

    def on_tx_done(self, interface: "Interface", packet: "Packet") -> None:
        self._record(packet, EVENT_TX_DONE, interface.name)

    def on_fault_drop(self, interface: "Interface",
                      packet: "Packet") -> None:
        self._record(packet, EVENT_FAULT_DROP, interface.name)

    def on_delivered(self, interface: "Interface", packet: "Packet") -> None:
        self._record(packet, EVENT_DELIVERED, interface.name)

    def on_received(self, node: "Node", packet: "Packet") -> None:
        self._record(packet, EVENT_RECEIVED, node.name)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def packet_uids(self) -> List[int]:
        """Every traced packet uid, in first-seen order."""
        return list(self._by_uid)

    def path(self, uid: int) -> List[HopRecord]:
        """The full milestone sequence of one packet (time-ordered)."""
        return list(self._by_uid.get(uid, ()))

    def fate(self, uid: int) -> Optional[HopRecord]:
        """The terminal milestone of a packet, or None if still in flight.

        For a round-trip (probe echoed back to its source) this is the
        *last* terminal record — intermediate ``received`` events at the
        echo host are not the end of the measured journey, but each leg's
        packet has its own uid, so per-uid the first terminal suffices.
        """
        for record in reversed(self._by_uid.get(uid, ())):
            if record.event in TERMINAL_EVENTS:
                return record
        return None

    def drops(self) -> List[HopRecord]:
        """Every queue-overflow and fault drop, time-ordered."""
        return [record for record in self.records
                if record.event in (EVENT_QUEUE_DROP, EVENT_FAULT_DROP)]

    def __repr__(self) -> str:
        return (f"<PacketLifecycleTracer {len(self.records)} records, "
                f"{len(self._by_uid)} packets"
                f"{'' if self._attached else ' (closed)'}>")


def probe_uids(tracer: PacketLifecycleTracer, source: str,
               echo: str) -> List[int]:
    """Uids of NetDyn probe packets, in send order.

    Probe ``n`` of a :class:`~repro.netdyn.trace.ProbeTrace` measured from
    ``source`` against ``echo`` is the ``n``-th UDP packet created at
    ``source`` with destination ``echo`` — which joins trace rows to
    lifecycle paths: ``tracer.path(probe_uids(tracer, src, echo)[n])``.
    """
    return [record.uid for record in tracer.records
            if record.event == EVENT_CREATED and record.place == source
            and record.dst == echo and record.kind == KIND_UDP]
