"""Exporters for observability data: JSONL and Chrome ``trace_event``.

JSONL (one JSON object per line) is the machine-readable interchange format
for event and hop records; both directions round-trip
(:func:`write_events_jsonl` / :func:`read_events_jsonl`,
:func:`write_hops_jsonl` / :func:`read_hops_jsonl`).

:func:`write_chrome_trace` emits the Chrome ``trace_event`` JSON format
(the ``chrome://tracing`` / Perfetto ``traceEvents`` array), laying the
simulation out on its *simulated* clock: each kernel event becomes a
complete ("X") slice at ``ts = sim time (µs)`` whose ``dur`` is the
callback's wall-clock cost in µs — so wide slices are expensive callbacks —
and each packet-lifecycle milestone becomes an instant ("i") event on a
per-place track.  Load the file in any trace viewer to scrub through the
run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.obs.lifecycle import HopRecord
from repro.obs.spans import SpanRecord
from repro.obs.tracer import EventRecord, KernelTracer
from repro.units import seconds_to_us

PathLike = Union[str, Path]


def _open_for_write(path: PathLike) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_events_jsonl(records: Iterable[EventRecord],
                       path: PathLike) -> int:
    """Write kernel event records as JSONL; returns the row count."""
    path = _open_for_write(path)
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_events_jsonl(path: PathLike) -> List[EventRecord]:
    """Read kernel event records written by :func:`write_events_jsonl`."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            records.append(EventRecord(time=row["time"], label=row["label"],
                                       priority=row["priority"],
                                       wall_seconds=row["wall_seconds"]))
    return records


def write_hops_jsonl(records: Iterable[HopRecord], path: PathLike) -> int:
    """Write packet-lifecycle hop records as JSONL; returns the row count."""
    path = _open_for_write(path)
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_hops_jsonl(path: PathLike) -> List[HopRecord]:
    """Read hop records written by :func:`write_hops_jsonl`."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            records.append(HopRecord(time=row["time"], uid=row["uid"],
                                     event=row["event"], place=row["place"],
                                     kind=row["kind"], src=row["src"],
                                     dst=row["dst"],
                                     queue_len=row["queue_len"]))
    return records


def write_spans_jsonl(records: Iterable[SpanRecord], path: PathLike) -> int:
    """Write wall-clock span records as JSONL; returns the row count."""
    path = _open_for_write(path)
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_spans_jsonl(path: PathLike) -> List[SpanRecord]:
    """Read span records written by :func:`write_spans_jsonl`."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            records.append(SpanRecord.from_dict(json.loads(line)))
    return records


def write_profiles_json(tracer: KernelTracer, path: PathLike) -> None:
    """Write a tracer's per-label profiles as one JSON document."""
    path = _open_for_write(path)
    document = {
        "events_seen": tracer.events_seen,
        "total_wall_seconds": tracer.total_wall_seconds,
        "events_per_wall_second": tracer.events_per_wall_second(),
        "profiles": [profile.as_dict() for profile in tracer.profiles()],
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True))


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def write_chrome_trace(path: PathLike,
                       events: Optional[Iterable[EventRecord]] = None,
                       hops: Optional[Iterable[HopRecord]] = None,
                       spans: Optional[Iterable[SpanRecord]] = None) -> int:
    """Write a Chrome ``trace_event`` file; returns the trace-event count.

    Kernel events land on the ``kernel`` track as complete slices
    (``ts`` = simulated µs, ``dur`` = wall-clock µs — slice width shows
    host cost).  Hop records land as instant events on one track per
    place, so a packet's path reads left to right across the tracks.
    Campaign spans land as complete slices on one lane per worker process
    (``pid`` = recording process, ``tid`` = worker label) on a *wall*
    clock normalized to the earliest span — a whole campaign renders as
    one flame graph of its host-time phases.
    """
    trace_events: List[dict] = []
    for record in (events or ()):
        trace_events.append({
            "name": record.label or "<unlabelled>",
            "cat": "kernel",
            "ph": "X",
            "ts": seconds_to_us(record.time),
            "dur": seconds_to_us(record.wall_seconds),
            "pid": 0,
            "tid": "kernel",
            "args": {"priority": record.priority},
        })
    for hop in (hops or ()):
        trace_events.append({
            "name": f"{hop.event} #{hop.uid}",
            "cat": "packet",
            "ph": "i",
            "ts": seconds_to_us(hop.time),
            "s": "t",
            "pid": 0,
            "tid": hop.place,
            "args": hop.as_dict(),
        })
    span_records = list(spans) if spans is not None else []
    if span_records:
        t0 = min(record.start for record in span_records)
        for record in span_records:
            trace_events.append({
                "name": record.name or "<unnamed>",
                "cat": "span",
                "ph": "X",
                "ts": seconds_to_us(record.start - t0),
                "dur": seconds_to_us(record.duration),
                "pid": record.pid,
                "tid": record.worker,
                "args": {"phase": record.phase, "cell": record.cell,
                         "depth": record.depth},
            })
    document = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    path = _open_for_write(path)
    path.write_text(json.dumps(document))
    return len(trace_events)


def read_chrome_trace(path: PathLike) -> List[dict]:
    """Read back the ``traceEvents`` array of a Chrome trace file."""
    document = json.loads(Path(path).read_text())
    return list(document["traceEvents"])
