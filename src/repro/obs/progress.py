"""Live campaign progress: cells done, cache hits, utilization, ETA.

A :class:`ProgressReporter` is fed by the campaign loop as cells resolve —
:meth:`cell_cached` for cache hits, :meth:`cell_done` for simulated cells —
and redraws a single status line on its stream::

    campaign 5/8 cells | 2 cached | 4 workers 87% busy | 12.3s elapsed, ~8s left

It is pure presentation: it reads the same completion events that become
span records and writes only to its stream (stderr by default), so turning
it on cannot change any deterministic artifact.  The CLI resolves the
``--progress/--no-progress`` flags through :func:`resolve_progress`, which
auto-disables the reporter when the stream is not a TTY (piped/CI output
stays clean); libraries get no reporter unless they ask for one.

Timing uses the host's monotonic clock; like every number here it is
execution telemetry and never feeds simulated time.
"""

from __future__ import annotations

import sys
from time import monotonic
from typing import IO, Callable, Optional, Union

from repro.errors import ConfigurationError

#: Width the status line is padded to so redraws fully cover each other.
_LINE_WIDTH = 78


class ProgressReporter:
    """Single-line live progress for a (δ × seed) campaign grid.

    Parameters
    ----------
    total:
        Number of cells in the grid.
    workers:
        Worker processes executing the grid (drives the ETA and the
        utilization estimate).
    stream:
        Where to draw (default ``sys.stderr``).  The reporter writes
        carriage-return redraws, so give it a terminal or a test buffer —
        :func:`resolve_progress` handles the "is this a TTY" decision.
    clock:
        Injectable monotonic clock, seconds (tests pin it).
    """

    def __init__(self, total: int, workers: int = 1,
                 stream: Optional[IO[str]] = None,
                 clock: Callable[[], float] = monotonic) -> None:
        self.total = int(total)
        self.workers = max(1, int(workers))
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.done = 0
        self.cached = 0
        self.busy_seconds = 0.0
        #: Worker seconds the cache saved (the hits' recorded cell costs).
        #: Kept strictly apart from ``busy_seconds``: saved time was never
        #: spent this run, so it must not enter the ETA mean — a burst of
        #: near-instant cache hits would otherwise crater the per-cell
        #: estimate and project an absurdly optimistic finish.
        self.saved_seconds = 0.0
        self._started: Optional[float] = None
        self._finished = False

    # ------------------------------------------------------------------
    # Event feed (called by the campaign loop)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Mark the campaign as running and draw the first line."""
        if self._started is None:
            self._started = self.clock()
        self._draw()

    def cell_cached(self, key: str, saved_seconds: float = 0.0) -> None:
        """One cell was answered from the cell cache.

        ``saved_seconds`` is the cell's originally recorded wall cost —
        reported separately as time the cache saved, never folded into
        the busy/ETA accounting.
        """
        self.done += 1
        self.cached += 1
        self.saved_seconds += max(0.0, saved_seconds)
        self._draw()

    def cell_done(self, key: str, wall_seconds: float = 0.0,
                  cached: bool = False) -> None:
        """One cell finished (``wall_seconds`` of worker time).

        ``cached=True`` routes the event to the cache-hit accounting
        (same as :meth:`cell_cached`): a hit's wall cost is time *saved*,
        not time spent, so it stays out of the ETA mean by construction
        even when a caller funnels every completion through this method.
        """
        if cached:
            self.cell_cached(key, saved_seconds=wall_seconds)
            return
        self.done += 1
        self.busy_seconds += max(0.0, wall_seconds)
        self._draw()

    def finish(self) -> None:
        """Complete the line; further events are ignored."""
        if self._finished:
            return
        self._draw()
        self.stream.write("\n")
        self.stream.flush()
        self._finished = True

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Wall seconds since :meth:`start` (0 before it)."""
        if self._started is None:
            return 0.0
        return max(0.0, self.clock() - self._started)

    def utilization(self) -> Optional[float]:
        """Fraction of worker capacity spent simulating, when known."""
        elapsed = self.elapsed()
        if elapsed <= 0 or self.done <= self.cached:
            return None
        return min(1.0, self.busy_seconds / (elapsed * self.workers))

    def eta_seconds(self) -> Optional[float]:
        """Projected seconds to finish, from mean *simulated*-cell cost.

        Cache hits are excluded from the mean on both sides of the
        division (their count and their saved wall time), so a hit-heavy
        prefix cannot skew the projection for the cells still to run.
        """
        simulated = self.done - self.cached
        remaining = self.total - self.done
        if remaining <= 0 or simulated <= 0 or self.busy_seconds <= 0:
            return None
        mean_cell = self.busy_seconds / simulated
        return remaining * mean_cell / self.workers

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The current status line (without the carriage return)."""
        parts = [f"campaign {self.done}/{self.total} cells"]
        if self.cached:
            cached_text = f"{self.cached} cached"
            if self.saved_seconds > 0:
                # Time the cache saved — shown apart from elapsed/ETA,
                # which count only this run's spent time.
                cached_text += f" (saved {self.saved_seconds:.1f}s)"
            parts.append(cached_text)
        worker_text = f"{self.workers} worker" \
            + ("s" if self.workers != 1 else "")
        utilization = self.utilization()
        if utilization is not None:
            worker_text += f" {utilization * 100:.0f}% busy"
        parts.append(worker_text)
        timing = f"{self.elapsed():.1f}s elapsed"
        eta = self.eta_seconds()
        if eta is not None:
            timing += f", ~{eta:.0f}s left"
        parts.append(timing)
        return " | ".join(parts)

    def _draw(self) -> None:
        if self._finished:
            return
        line = self.render()
        self.stream.write("\r" + line.ljust(_LINE_WIDTH)[:_LINE_WIDTH])
        self.stream.flush()


#: What ``run_campaign(progress=...)`` accepts.
ProgressLike = Union[None, bool, str, ProgressReporter]


def resolve_progress(progress: ProgressLike, total: int, workers: int,
                     stream: Optional[IO[str]] = None,
                     ) -> Optional[ProgressReporter]:
    """Coerce a progress request into a reporter (or None = silent).

    * ``None``/``False``/``"off"`` — no reporter (the library default:
      telemetry is opt-in).
    * ``True``/``"auto"`` — a reporter only when the stream is a TTY, so
      piped and CI output stays machine-readable.
    * ``"on"`` — a reporter unconditionally (the CLI's ``--progress``).
    * an existing :class:`ProgressReporter` — used as-is.
    """
    if progress is None or progress is False or progress == "off":
        return None
    if isinstance(progress, ProgressReporter):
        return progress
    target = stream if stream is not None else sys.stderr
    if progress is True or progress == "auto":
        if not _is_tty(target):
            return None
        return ProgressReporter(total=total, workers=workers, stream=target)
    if progress == "on":
        return ProgressReporter(total=total, workers=workers, stream=target)
    raise ConfigurationError(f"unsupported progress request {progress!r}")


def _is_tty(stream: IO[str]) -> bool:
    isatty = getattr(stream, "isatty", None)
    if isatty is None:
        return False
    try:
        return bool(isatty())
    except (OSError, ValueError):
        return False
