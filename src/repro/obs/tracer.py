"""Kernel event tracing: what fired, when, and what it cost.

A :class:`KernelTracer` attaches to :meth:`repro.sim.kernel.Simulator` via
``sim.attach_observer(tracer)`` and records one :class:`EventRecord` per
executed event — simulated time, label, priority, and the wall-clock cost of
the callback.  Records go into a bounded ring buffer (or an unbounded log),
and every event also feeds a per-label :class:`LabelProfile`, which is how
hot paths are found: sort profiles by total wall time and the most expensive
event kinds fall out.

The tracer is purely passive: it never touches the simulator, so attaching
it cannot change any simulated timestamp (the same-seed equality tests in
``tests/obs`` enforce this).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.errors import ConfigurationError

#: Default ring-buffer capacity: large enough for a full short experiment,
#: bounded so day-long runs cannot exhaust memory.
DEFAULT_CAPACITY = 1_000_000


class EventRecord:
    """One executed kernel event.

    A slotted immutable-by-convention value object (one is allocated per
    executed event while tracing, so instance size matters).

    Attributes
    ----------
    time:
        Simulated time at which the event fired, seconds.
    label:
        The event's scheduling label (``"tx-done a->b"``, ``"traffic"``...).
    priority:
        Scheduling priority (tie-breaker; lower ran first).
    wall_seconds:
        Wall-clock cost of the event callback, seconds.
    """

    __slots__ = ("time", "label", "priority", "wall_seconds")

    def __init__(self, time: float, label: str, priority: int,
                 wall_seconds: float) -> None:
        self.time = time
        self.label = label
        self.priority = priority
        self.wall_seconds = wall_seconds

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventRecord):
            return NotImplemented
        return (self.time == other.time and self.label == other.label
                and self.priority == other.priority
                and self.wall_seconds == other.wall_seconds)

    def __hash__(self) -> int:
        return hash((self.time, self.label, self.priority,
                     self.wall_seconds))

    def __repr__(self) -> str:
        return (f"EventRecord(time={self.time!r}, label={self.label!r}, "
                f"priority={self.priority!r}, "
                f"wall_seconds={self.wall_seconds!r})")

    def as_dict(self) -> dict:
        """JSON-serializable form (one JSONL row)."""
        return {"time": self.time, "label": self.label,
                "priority": self.priority,
                "wall_seconds": self.wall_seconds}


@dataclass
class LabelProfile:
    """Aggregate cost of every event sharing one label."""

    label: str
    count: int = 0
    total_wall_seconds: float = 0.0
    max_wall_seconds: float = 0.0
    first_time: float = 0.0
    last_time: float = 0.0

    def add(self, time: float, wall_seconds: float) -> None:
        """Fold one event into the profile."""
        if self.count == 0:
            self.first_time = time
        self.count += 1
        self.total_wall_seconds += wall_seconds
        if wall_seconds > self.max_wall_seconds:
            self.max_wall_seconds = wall_seconds
        self.last_time = time

    def mean_wall_seconds(self) -> float:
        """Average wall-clock cost per event, seconds."""
        return self.total_wall_seconds / self.count if self.count else 0.0

    def events_per_sim_second(self) -> float:
        """Firing rate of this label in simulated time."""
        span = self.last_time - self.first_time
        if span <= 0:
            return 0.0
        return self.count / span

    def as_dict(self) -> dict:
        """JSON-serializable form (one profile row)."""
        return {"label": self.label, "count": self.count,
                "total_wall_seconds": self.total_wall_seconds,
                "max_wall_seconds": self.max_wall_seconds,
                "mean_wall_seconds": self.mean_wall_seconds(),
                "events_per_sim_second": self.events_per_sim_second()}


class KernelTracer:
    """Records executed kernel events into a ring buffer plus label profiles.

    Parameters
    ----------
    capacity:
        Ring-buffer size in records; older records are discarded once full
        (:attr:`overwritten` counts them).  ``None`` keeps every record.

    Examples
    --------
    >>> from repro.sim import Simulator
    >>> sim = Simulator(seed=1)
    >>> tracer = KernelTracer()
    >>> sim.attach_observer(tracer)
    >>> _ = sim.call_at(1.0, lambda: None, label="tick")
    >>> sim.run()
    >>> [record.label for record in tracer.records]
    ['tick']
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(
                f"tracer capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._records: Deque[EventRecord] = deque(maxlen=capacity)
        self._profiles: Dict[str, LabelProfile] = {}
        self.events_seen = 0
        self.total_wall_seconds = 0.0

    # ------------------------------------------------------------------
    # KernelObserver interface (called by Simulator.run)
    # ------------------------------------------------------------------
    def on_event(self, time: float, label: str, priority: int,
                 wall_seconds: float) -> None:
        """Record one executed event (the kernel's observer callback)."""
        self.events_seen += 1
        self.total_wall_seconds += wall_seconds
        self._records.append(EventRecord(time=time, label=label,
                                         priority=priority,
                                         wall_seconds=wall_seconds))
        profile = self._profiles.get(label)
        if profile is None:
            profile = self._profiles[label] = LabelProfile(label=label)
        profile.add(time, wall_seconds)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def records(self) -> List[EventRecord]:
        """The retained event records, oldest first."""
        return list(self._records)

    @property
    def overwritten(self) -> int:
        """How many records the ring buffer has already discarded."""
        return self.events_seen - len(self._records)

    def profiles(self) -> List[LabelProfile]:
        """Per-label profiles, most expensive (total wall time) first."""
        return sorted(self._profiles.values(),
                      key=lambda p: (-p.total_wall_seconds, p.label))

    def profile(self, label: str) -> LabelProfile:
        """The profile for one label (KeyError if never seen)."""
        return self._profiles[label]

    def events_per_wall_second(self) -> float:
        """Observed kernel throughput: events / total callback wall time."""
        if self.total_wall_seconds <= 0:
            return 0.0
        return self.events_seen / self.total_wall_seconds

    def hot_labels(self, n: int = 10) -> List[LabelProfile]:
        """The ``n`` labels costing the most total wall time."""
        return self.profiles()[:n]

    def clear(self) -> None:
        """Forget all records and profiles (capacity is kept)."""
        self._records.clear()
        self._profiles.clear()
        self.events_seen = 0
        self.total_wall_seconds = 0.0

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (f"<KernelTracer {self.events_seen} events "
                f"({len(self._records)} retained, "
                f"{len(self._profiles)} labels)>")
