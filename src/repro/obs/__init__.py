"""repro.obs: zero-perturbation observability for the simulator.

Four parts, all passive observers of the substrate:

* **Kernel tracing** (:mod:`repro.obs.tracer`) — every fired event with its
  simulated time, label, priority, and wall-clock cost, plus per-label
  profiles for hot-path hunting.
* **Metrics registry** (:mod:`repro.obs.registry`) — named counters, gauges,
  and histograms pulled from the components' existing ``sim.monitor``
  instruments, snapshotted into one nested dict per run.
* **Packet-lifecycle tracing** (:mod:`repro.obs.lifecycle`) — per-packet hop
  records (created / enqueued / dropped / tx / delivered, with queue
  occupancy) so any probe's full path can be reconstructed and joined
  against its :class:`~repro.netdyn.trace.ProbeTrace` row.
* **Exporters and manifests** (:mod:`repro.obs.export`,
  :mod:`repro.obs.manifest`) — JSONL, Chrome ``trace_event``, and the run
  manifest written next to campaign outputs.
* **Campaign telemetry** (:mod:`repro.obs.spans`,
  :mod:`repro.obs.progress`, :mod:`repro.obs.bench`,
  :mod:`repro.obs.structlog`) — cross-process wall-clock spans merged into
  one flame graph, a live progress line for ``repro-campaign``,
  schema-versioned ``BENCH_*.json`` reports with regression comparison,
  and structured key=value logging for library warnings.

The governing invariant (enforced by ``tests/obs/test_determinism.py``):
with observability disabled the hot path is untouched, and enabling it
never changes a simulated timestamp — same seed ⇒ bit-identical
``ProbeTrace`` with tracing on and off.

Quick start::

    from repro import build_inria_umd, run_probe_experiment
    from repro.obs import Observability

    scenario = build_inria_umd(seed=1)
    obs = Observability.full(scenario.sim, scenario.network)
    scenario.start_traffic()
    trace = run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.05, count=200)
    metrics = obs.snapshot()              # nested dict of every counter
    obs.kernel.hot_labels(5)              # most expensive event labels
    obs.save("out/")                      # events.jsonl, hops.jsonl, ...
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.obs.bench import (
    build_report,
    compare_reports,
    format_comparison,
    read_report,
    write_report,
)
from repro.obs.export import (
    read_chrome_trace,
    read_events_jsonl,
    read_hops_jsonl,
    read_spans_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_hops_jsonl,
    write_profiles_json,
    write_spans_jsonl,
)
from repro.obs.lifecycle import HopRecord, PacketLifecycleTracer, probe_uids
from repro.obs.manifest import (
    build_manifest,
    read_manifest,
    read_timing,
    write_manifest,
    write_timing,
)
from repro.obs.progress import ProgressReporter, resolve_progress
from repro.obs.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    instrument_network,
    instrument_traffic,
)
from repro.obs.spans import (
    SpanRecord,
    SpanTracer,
    merge_spans,
    read_span_dir,
    summarize_spans,
)
from repro.obs.structlog import ObsLogger, obs_logger
from repro.obs.tracer import EventRecord, KernelTracer, LabelProfile

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.net.routing import Network
    from repro.sim.kernel import Simulator

__all__ = [
    "CounterMetric",
    "EventRecord",
    "GaugeMetric",
    "HistogramMetric",
    "HopRecord",
    "KernelTracer",
    "LabelProfile",
    "MetricsRegistry",
    "ObsLogger",
    "Observability",
    "PacketLifecycleTracer",
    "ProgressReporter",
    "SpanRecord",
    "SpanTracer",
    "build_manifest",
    "build_report",
    "compare_reports",
    "format_comparison",
    "instrument_network",
    "instrument_traffic",
    "merge_spans",
    "obs_logger",
    "probe_uids",
    "read_chrome_trace",
    "read_events_jsonl",
    "read_hops_jsonl",
    "read_manifest",
    "read_report",
    "read_span_dir",
    "read_spans_jsonl",
    "read_timing",
    "resolve_progress",
    "summarize_spans",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_hops_jsonl",
    "write_manifest",
    "write_profiles_json",
    "write_report",
    "write_spans_jsonl",
    "write_timing",
]


@dataclass
class Observability:
    """One run's observability bundle: tracer + lifecycle + registry.

    Build with :meth:`full` (everything on), :meth:`metrics_only`
    (registry only — adds nothing to the hot path), or assemble the three
    parts by hand.  ``kernel`` and ``lifecycle`` stay ``None`` when their
    collector is disabled.
    """

    registry: MetricsRegistry
    kernel: Optional[KernelTracer] = None
    lifecycle: Optional[PacketLifecycleTracer] = None

    @classmethod
    def full(cls, sim: "Simulator", network: "Network",
             trace_capacity: Optional[int] = None) -> "Observability":
        """Attach every collector to a built simulator + network."""
        kernel = KernelTracer() if trace_capacity is None \
            else KernelTracer(capacity=trace_capacity)
        sim.attach_observer(kernel)
        lifecycle = PacketLifecycleTracer(network)
        registry = MetricsRegistry()
        instrument_network(registry, network)
        return cls(registry=registry, kernel=kernel, lifecycle=lifecycle)

    @classmethod
    def metrics_only(cls, network: "Network") -> "Observability":
        """Registry-only bundle: pull-based, zero hot-path cost."""
        registry = MetricsRegistry()
        instrument_network(registry, network)
        return cls(registry=registry)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The registry's nested metrics dict."""
        return self.registry.snapshot()

    def close(self, sim: Optional["Simulator"] = None) -> None:
        """Detach every attached collector (records stay available)."""
        if self.lifecycle is not None:
            self.lifecycle.close()
        if sim is not None and self.kernel is not None \
                and sim.observer is self.kernel:
            sim.detach_observer()

    def save(self, directory: Union[str, Path]) -> List[Path]:
        """Write every collected artifact into ``directory``.

        Produces (when the matching collector is enabled)
        ``events.jsonl``, ``profiles.json``, ``hops.jsonl``, and
        ``trace.json`` (Chrome trace_event).  Returns the written paths.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        if self.kernel is not None:
            events_path = directory / "events.jsonl"
            write_events_jsonl(self.kernel.records, events_path)
            written.append(events_path)
            profiles_path = directory / "profiles.json"
            write_profiles_json(self.kernel, profiles_path)
            written.append(profiles_path)
        if self.lifecycle is not None:
            hops_path = directory / "hops.jsonl"
            write_hops_jsonl(self.lifecycle.records, hops_path)
            written.append(hops_path)
        if self.kernel is not None or self.lifecycle is not None:
            chrome_path = directory / "trace.json"
            write_chrome_trace(
                chrome_path,
                events=self.kernel.records if self.kernel else None,
                hops=self.lifecycle.records if self.lifecycle else None)
            written.append(chrome_path)
        return written
