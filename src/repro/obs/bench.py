"""Schema-versioned benchmark reports and regression comparison.

Every benchmark suite under ``benchmarks/`` writes its numbers through one
shared document shape (``BENCH_<suite>.json``)::

    {
      "schema": "repro-bench",
      "schema_version": 1,
      "suite": "kernel",
      "mode": "full",
      "metrics": {
        "event_loop_events_per_second":
            {"value": 269000.0, "unit": "events/s", "direction": "higher"},
        ...
      },
      "machine": {"platform": ..., "python": ..., "cpu_count": ...},
      "salt": "repro-cell-v2-<digest>",
      "details": { ... suite-specific raw results ... }
    }

``metrics`` is the comparable surface: each entry is a scalar with a unit
and a *direction* saying which way is better, so
:func:`compare_reports` can decide direction-aware whether a change is a
regression.  ``details`` keeps each suite's full raw output (rounds,
per-workload event counts, baselines) without constraining its shape.
``salt`` is the derived code-version salt from the whole-program analysis
(PR 6) — two reports with different salts benchmarked different kernels,
and the comparison says so.  Like manifests, reports carry no timestamps:
a re-run on the same code and machine produces a comparable document.

``repro-bench compare OLD NEW --threshold 0.1`` (see
:func:`repro.cli.main_bench`) exits non-zero when any shared metric moved
more than the threshold in its bad direction.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import AnalysisError

PathLike = Union[str, Path]

SCHEMA_NAME = "repro-bench"
SCHEMA_VERSION = 1

#: Metric directions: which way is *better*.
HIGHER_IS_BETTER = "higher"
LOWER_IS_BETTER = "lower"

#: Default relative change treated as a regression by ``compare``.
DEFAULT_THRESHOLD = 0.10


def machine_info() -> Dict[str, object]:
    """Host facts that contextualize benchmark numbers."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def metric(value: float, unit: str,
           direction: str = HIGHER_IS_BETTER) -> Dict[str, object]:
    """One comparable metric entry for a report's ``metrics`` map."""
    if direction not in (HIGHER_IS_BETTER, LOWER_IS_BETTER):
        raise AnalysisError(
            f"metric direction must be {HIGHER_IS_BETTER!r} or "
            f"{LOWER_IS_BETTER!r}, not {direction!r}")
    return {"value": float(value), "unit": unit, "direction": direction}


def build_report(suite: str, metrics: Dict[str, dict],
                 mode: str = "full",
                 details: Optional[dict] = None,
                 salt: Optional[str] = None) -> dict:
    """Assemble a schema-versioned benchmark report document.

    ``salt`` defaults to the derived cache salt
    (:func:`repro.experiments.cache.cache_salt`), identifying the kernel
    code version the numbers were measured on.  The import is lazy so this
    module stays importable without pulling the experiment layer in.
    """
    if salt is None:
        from repro.experiments.cache import cache_salt
        salt = cache_salt()
    for name, entry in metrics.items():
        for field in ("value", "unit", "direction"):
            if field not in entry:
                raise AnalysisError(
                    f"metric {name!r} is missing field {field!r}; "
                    "build entries with repro.obs.bench.metric()")
    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "mode": mode,
        "metrics": dict(metrics),
        "machine": machine_info(),
        "salt": salt,
        "details": details if details is not None else {},
    }


def write_report(report: dict, path: PathLike) -> Path:
    """Write a report as pretty, key-sorted JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_report(path: PathLike) -> dict:
    """Read and validate a benchmark report.

    Raises :class:`~repro.errors.AnalysisError` with the offending path
    when the document is not a ``repro-bench`` report this code can
    compare (wrong schema name, newer schema version, or missing
    ``suite``/``metrics``).
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot read benchmark report {path}: {exc}")
    if not isinstance(document, dict) \
            or document.get("schema") != SCHEMA_NAME:
        raise AnalysisError(
            f"{path} is not a {SCHEMA_NAME} report (schema="
            f"{document.get('schema')!r})" if isinstance(document, dict)
            else f"{path} is not a {SCHEMA_NAME} report")
    version = document.get("schema_version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise AnalysisError(
            f"{path} has schema_version {version!r}; this code understands "
            f"up to {SCHEMA_VERSION}")
    if "suite" not in document or not isinstance(
            document.get("metrics"), dict):
        raise AnalysisError(f"{path} is missing 'suite' or 'metrics'")
    return document


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
class MetricChange:
    """One metric's movement between two reports."""

    __slots__ = ("name", "old", "new", "unit", "direction", "ratio")

    def __init__(self, name: str, old: float, new: float, unit: str,
                 direction: str) -> None:
        self.name = name
        self.old = old
        self.new = new
        self.unit = unit
        self.direction = direction
        self.ratio = (new / old) if old else None

    def relative_change(self) -> Optional[float]:
        """Signed relative change where positive = got better."""
        if self.ratio is None:
            return None
        change = self.ratio - 1.0
        return change if self.direction == HIGHER_IS_BETTER else -change

    def is_regression(self, threshold: float) -> bool:
        """True when the metric moved past ``threshold`` the *bad* way."""
        change = self.relative_change()
        return change is not None and change < -threshold

    def __repr__(self) -> str:
        return (f"MetricChange({self.name!r}, old={self.old!r}, "
                f"new={self.new!r})")


def compare_reports(old: dict, new: dict,
                    threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Compare two reports; returns changes, regressions, and caveats.

    Only metrics present in *both* reports are compared (a new benchmark
    has no baseline; a removed one has no current value — both are listed
    as caveats, not failures).  The result dict has ``changes`` (every
    shared metric as a :class:`MetricChange`), ``regressions`` (the subset
    past ``threshold`` in the bad direction), and ``caveats`` (mode/suite/
    salt mismatches and one-sided metrics).
    """
    if threshold < 0:
        raise AnalysisError(f"threshold must be >= 0, not {threshold}")
    caveats: List[str] = []
    if old.get("suite") != new.get("suite"):
        caveats.append(f"suite mismatch: {old.get('suite')!r} vs "
                       f"{new.get('suite')!r}")
    if old.get("mode") != new.get("mode"):
        caveats.append(f"mode mismatch: {old.get('mode')!r} vs "
                       f"{new.get('mode')!r} (numbers not comparable "
                       "across modes)")
    if old.get("salt") != new.get("salt"):
        caveats.append("code salt differs (the two runs benchmarked "
                       "different kernel code versions)")
    old_metrics = old.get("metrics", {})
    new_metrics = new.get("metrics", {})
    for name in sorted(set(old_metrics) - set(new_metrics)):
        caveats.append(f"metric {name!r} only in old report")
    for name in sorted(set(new_metrics) - set(old_metrics)):
        caveats.append(f"metric {name!r} only in new report")
    changes: List[MetricChange] = []
    for name in sorted(set(old_metrics) & set(new_metrics)):
        old_entry, new_entry = old_metrics[name], new_metrics[name]
        changes.append(MetricChange(
            name=name, old=float(old_entry["value"]),
            new=float(new_entry["value"]),
            unit=new_entry.get("unit", old_entry.get("unit", "")),
            direction=new_entry.get("direction",
                                    old_entry.get("direction",
                                                  HIGHER_IS_BETTER))))
    regressions = [change for change in changes
                   if change.is_regression(threshold)]
    return {"changes": changes, "regressions": regressions,
            "caveats": caveats, "threshold": threshold}


def format_comparison(comparison: dict) -> str:
    """Human-readable multi-line rendering of a comparison result."""
    lines: List[str] = []
    threshold = comparison["threshold"]
    for change in comparison["changes"]:
        relative = change.relative_change()
        if relative is None:
            movement = "old value was 0"
        else:
            movement = f"{relative * +100:+.1f}%"
        verdict = "REGRESSION" if change.is_regression(threshold) else "ok"
        unit = f" {change.unit}" if change.unit else ""
        lines.append(f"{verdict:>10}  {change.name}: "
                     f"{change.old:g} -> {change.new:g}{unit} ({movement})")
    for caveat in comparison["caveats"]:
        lines.append(f"      note  {caveat}")
    count = len(comparison["regressions"])
    lines.append(f"{count} regression(s) past {threshold * 100:.0f}% "
                 f"threshold across {len(comparison['changes'])} "
                 "shared metric(s)")
    return "\n".join(lines)


def flat_metrics(results: Dict[str, dict], unit: str,
                 direction: str = HIGHER_IS_BETTER,
                 value_key: str = "events_per_second",
                 ) -> Dict[str, dict]:
    """Lift ``{workload: {value_key: n}}`` dicts into metric entries.

    Convenience for the benchmark scripts whose ``collect()`` functions
    return per-workload dicts — the metric name becomes
    ``<workload>_<value_key>``.
    """
    metrics: Dict[str, dict] = {}
    for workload in sorted(results):
        entry = results[workload]
        if isinstance(entry, dict) and value_key in entry:
            metrics[f"{workload}_{value_key}"] = metric(
                entry[value_key], unit, direction)
    return metrics


def iter_report_paths(directory: PathLike) -> Iterable[Path]:
    """The ``BENCH_*.json`` files under ``directory``, name-sorted."""
    return sorted(Path(directory).glob("BENCH_*.json"))
