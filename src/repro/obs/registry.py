"""The metrics registry: named counters, gauges, and histograms.

Components register instruments under slash-separated names
(``net/icm-sophia.icp.net/if/Ithaca.NY.NSS.NSF.NET/queue/drops`` — slashes,
not dots, because node names are hostnames) and a single
:meth:`MetricsRegistry.snapshot` call collects everything into one nested
dict per run.  Counters and gauges are *pull-based*: they hold a zero-argument
callable that reads state the component already maintains (the
``sim.monitor`` counters and time-weighted values), so registering metrics
adds nothing to the simulation hot path and cannot perturb event order.
Histograms are push-based (``observe``) for consumers that want
distributions, built on :class:`repro.sim.monitor.SampleStats`.

:func:`instrument_network` walks a built :class:`~repro.net.routing.Network`
and registers the standard per-node / per-interface / per-queue instruments,
including the per-fault drop counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.monitor import SampleStats

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.net.routing import Network

#: Hierarchy separator in instrument names (dots appear inside hostnames).
SEPARATOR = "/"

#: Instrument kinds (the ``kind`` field of snapshot leaves).
KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"


class Instrument:
    """Base class: a named, self-describing metric."""

    kind: str = ""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description

    def value(self) -> Any:
        """Current value (snapshot leaf)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}={self.value()!r}>"


class CounterMetric(Instrument):
    """A monotonically growing count.

    Either *bound* (``source`` reads an existing component counter at
    snapshot time — the zero-overhead form) or *owned* (incremented through
    :meth:`increment`).
    """

    kind = KIND_COUNTER

    def __init__(self, name: str, source: Optional[Callable[[], int]] = None,
                 description: str = "") -> None:
        super().__init__(name, description)
        self._source = source
        self._count = 0

    def increment(self, by: int = 1) -> None:
        """Add ``by`` to an owned counter (bound counters reject this)."""
        if self._source is not None:
            raise ConfigurationError(
                f"counter {self.name!r} is bound to a source; "
                f"it cannot be incremented directly")
        self._count += by

    def value(self) -> int:
        return self._source() if self._source is not None else self._count


class GaugeMetric(Instrument):
    """A point-in-time reading pulled from a callable at snapshot time."""

    kind = KIND_GAUGE

    def __init__(self, name: str, source: Callable[[], float],
                 description: str = "") -> None:
        super().__init__(name, description)
        self._source = source

    def value(self) -> float:
        return float(self._source())


class HistogramMetric(Instrument):
    """A pushed sample distribution: streaming stats plus bucket counts.

    ``bounds`` are the upper edges of the finite buckets; one overflow
    bucket catches everything above the last bound.
    """

    kind = KIND_HISTOGRAM

    def __init__(self, name: str, bounds: Sequence[float],
                 description: str = "") -> None:
        super().__init__(name, description)
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} needs ascending bucket bounds, "
                f"got {bounds!r}")
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.stats = SampleStats()

    def observe(self, sample: float) -> None:
        """Record one sample."""
        self.stats.add(sample)
        for index, bound in enumerate(self.bounds):
            if sample <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def value(self) -> dict:
        return {
            "count": self.stats.count,
            "mean": self.stats.mean(),
            "stddev": self.stats.stddev(),
            "min": self.stats.minimum(),
            "max": self.stats.maximum(),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Holds every registered instrument and snapshots them as one dict."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str, source: Optional[Callable[[], int]] = None,
                description: str = "") -> CounterMetric:
        """Register (and return) a counter; ``source`` makes it pull-based."""
        metric = CounterMetric(name, source=source, description=description)
        self._add(metric)
        return metric

    def gauge(self, name: str, source: Callable[[], float],
              description: str = "") -> GaugeMetric:
        """Register (and return) a pull-based gauge."""
        metric = GaugeMetric(name, source=source, description=description)
        self._add(metric)
        return metric

    def histogram(self, name: str, bounds: Sequence[float],
                  description: str = "") -> HistogramMetric:
        """Register (and return) a push-based histogram."""
        metric = HistogramMetric(name, bounds=bounds, description=description)
        self._add(metric)
        return metric

    def _add(self, metric: Instrument) -> None:
        if metric.name in self._instruments:
            raise ConfigurationError(
                f"duplicate metric name {metric.name!r}")
        self._instruments[metric.name] = metric

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Instrument:
        """Look one instrument up by its full slash-separated name."""
        return self._instruments[name]

    def names(self) -> List[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def flat_snapshot(self) -> Dict[str, Any]:
        """``{full name: value}`` for every instrument."""
        return {name: self._instruments[name].value()
                for name in sorted(self._instruments)}

    def snapshot(self) -> Dict[str, Any]:
        """One nested dict of every metric, split on :data:`SEPARATOR`."""
        nested: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            parts = name.split(SEPARATOR)
            cursor = nested
            for part in parts[:-1]:
                cursor = cursor.setdefault(part, {})
            cursor[parts[-1]] = self._instruments[name].value()
        return nested

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._instruments)} instruments>"


# ----------------------------------------------------------------------
# Standard instrumentation of a built network
# ----------------------------------------------------------------------
def instrument_network(registry: MetricsRegistry, network: "Network",
                       prefix: str = "net") -> None:
    """Register the standard substrate metrics for every network component.

    Per node: forwarding and drop counters (plus UDP counters on hosts).
    Per interface: transmit counters, busy-time utilization gauge, fault
    drops, and per-fault-model drop counters.  Per queue: arrival / drop /
    departure counters and time-weighted occupancy gauges.  Everything is
    pull-based, so this can be called before *or* after the run.
    """
    from repro.net.host import Host  # local import: avoid cycle at load

    for node_name in sorted(network.nodes):
        node = network.nodes[node_name]
        base = f"{prefix}/{node_name}"
        registry.counter(f"{base}/forwarded",
                         source=lambda n=node: n.forwarded,
                         description="packets forwarded by this node")
        registry.counter(f"{base}/ttl_drops",
                         source=lambda n=node: n.ttl_drops,
                         description="packets dropped for expired TTL")
        registry.counter(f"{base}/no_route_drops",
                         source=lambda n=node: n.no_route_drops,
                         description="packets dropped for missing routes")
        if isinstance(node, Host):
            registry.counter(f"{base}/udp_sent",
                             source=lambda h=node: h.udp_sent,
                             description="UDP datagrams originated")
            registry.counter(f"{base}/udp_received",
                             source=lambda h=node: h.udp_received,
                             description="UDP datagrams delivered locally")
        for peer_name in sorted(node.interfaces):
            interface = node.interfaces[peer_name]
            ibase = f"{base}/if/{peer_name}"
            registry.counter(f"{ibase}/transmitted",
                             source=lambda i=interface: i.transmitted,
                             description="packets fully serialized")
            registry.counter(f"{ibase}/transmitted_bits",
                             source=lambda i=interface: i.transmitted_bits,
                             description="bits put on the wire")
            registry.counter(f"{ibase}/fault_drops",
                             source=lambda i=interface: i.fault_drops,
                             description="packets discarded by fault models")
            registry.gauge(f"{ibase}/utilization",
                           source=interface.utilization_estimate,
                           description="fraction of time transmitter busy")
            registry.gauge(f"{ibase}/busy_seconds",
                           source=lambda i=interface: i.busy_time,
                           description="total transmitter busy time")
            for position, fault in enumerate(interface.egress_faults):
                _instrument_fault(registry, f"{ibase}/egress_fault{position}",
                                  fault)
            for position, fault in enumerate(interface.ingress_faults):
                _instrument_fault(registry, f"{ibase}/ingress_fault{position}",
                                  fault)
            queue = interface.queue
            qbase = f"{ibase}/queue"
            registry.counter(f"{qbase}/arrivals",
                             source=lambda q=queue: q.arrivals,
                             description="enqueue attempts")
            registry.counter(f"{qbase}/drops",
                             source=lambda q=queue: q.drops,
                             description="tail drops on overflow")
            registry.counter(f"{qbase}/departures",
                             source=lambda q=queue: q.departures,
                             description="packets dequeued for transmission")
            registry.gauge(f"{qbase}/loss_fraction",
                           source=lambda q=queue: q.loss_fraction,
                           description="drops / arrivals")
            registry.gauge(f"{qbase}/occupancy_mean_pkts",
                           source=queue.occupancy_packets.mean,
                           description="time-weighted mean occupancy, pkts")
            registry.gauge(f"{qbase}/occupancy_max_pkts",
                           source=queue.occupancy_packets.maximum,
                           description="peak occupancy, packets")
            registry.gauge(f"{qbase}/occupancy_mean_bytes",
                           source=queue.occupancy_bytes.mean,
                           description="time-weighted mean occupancy, bytes")


def _instrument_fault(registry: MetricsRegistry, base: str,
                      fault: Any) -> None:
    """Register whatever counters a fault model exposes."""
    if hasattr(fault, "dropped"):
        registry.counter(f"{base}/dropped",
                         source=lambda f=fault: f.dropped,
                         description=f"packets discarded "
                                     f"({type(fault).__name__})")


def instrument_traffic(registry: MetricsRegistry, sources: Sequence[Any],
                       prefix: str = "traffic") -> None:
    """Register sent-packet/byte counters for traffic sources.

    Accepts anything with ``packets_sent`` / ``bytes_sent`` attributes
    (every :class:`repro.traffic.base.TrafficSource` subclass qualifies).
    """
    for index, source in enumerate(sources):
        base = f"{prefix}/source{index}"
        label = type(source).__name__
        if hasattr(source, "packets_sent"):
            registry.counter(f"{base}/packets_sent",
                             source=lambda s=source: s.packets_sent,
                             description=f"packets emitted ({label})")
        if hasattr(source, "bytes_sent"):
            registry.counter(f"{base}/bytes_sent",
                             source=lambda s=source: s.bytes_sent,
                             description=f"payload bytes emitted ({label})")
