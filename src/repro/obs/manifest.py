"""Run manifests: everything needed to explain (and re-run) one experiment.

A manifest is a single JSON document recording the experiment configuration,
the master seed, the software versions the run was produced with, and the
metrics snapshot at the end of the run.  Campaigns write one next to their
trace CSVs (``manifest.json``), so any saved figure can be traced back to
the exact configuration and substrate state that produced it.

No wall-clock timestamp is recorded on purpose: manifests are part of the
deterministic artifact set, and two same-seed runs should produce
byte-identical manifests (DESIGN.md's determinism invariant).
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy

import repro

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of config values into JSON-safe types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def build_manifest(config: Any = None, seed: Optional[int] = None,
                   metrics: Optional[Dict[str, Any]] = None,
                   extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble a manifest dict.

    Parameters
    ----------
    config:
        The experiment/campaign configuration (dataclasses serialize
        field-by-field; anything else is stored via ``repr``).
    seed:
        Master seed, when not already part of ``config``.
    metrics:
        A :meth:`repro.obs.MetricsRegistry.snapshot` dict.
    extra:
        Free-form additions (trace file names, scenario notes, ...).
    """
    manifest: Dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "versions": {
            "repro": repro.__version__,
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            "platform": platform.platform(),
        },
    }
    if config is not None:
        manifest["config"] = _jsonable(config)
    if seed is not None:
        manifest["seed"] = seed
    if metrics is not None:
        manifest["metrics"] = metrics
    if extra:
        manifest["extra"] = _jsonable(extra)
    return manifest


def write_manifest(path: Union[str, Path], config: Any = None,
                   seed: Optional[int] = None,
                   metrics: Optional[Dict[str, Any]] = None,
                   extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build a manifest and write it as pretty-printed JSON.

    Returns the manifest dict that was written.
    """
    manifest = build_manifest(config=config, seed=seed, metrics=metrics,
                              extra=extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a manifest written by :func:`write_manifest`."""
    return json.loads(Path(path).read_text())


def write_timing(path: Union[str, Path], workers: int,
                 cell_wall_seconds: Dict[str, float],
                 cache: Optional[Dict[str, Any]] = None,
                 spans: Optional[Dict[str, Any]] = None,
                 dispatch: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Write the execution-timing sidecar of a campaign run.

    Wall-clock timings are inherently non-deterministic, so they live in
    their own file (``timing.json``) next to ``manifest.json`` rather than
    inside it: the manifest stays byte-identical across same-seed runs and
    across serial vs. parallel execution (DESIGN.md's determinism
    invariant), while the sidecar records how the run was executed —
    worker count, per-cell wall seconds, (when a cell cache was in
    play) the ``cache`` block: hits/misses, byte volumes, and the per-cell
    hit-or-miss map, (when span telemetry was enabled) the ``spans``
    block: per-phase counts and wall totals from
    :func:`repro.obs.spans.summarize_spans`, and the ``dispatch`` block:
    which executor ran the grid (serial / warm lease pipeline / spawn
    pool), lease count and batch size, and shared-memory transport
    volumes.  Cache behaviour, span telemetry, and dispatch mechanics are
    execution mechanics, which is exactly why they belong here and never
    in the manifest.

    Returns the document that was written.
    """
    document: Dict[str, Any] = {
        "workers": int(workers),
        "cell_wall_seconds": {key: float(value)
                              for key, value in cell_wall_seconds.items()},
        "total_cell_seconds": float(sum(cell_wall_seconds.values())),
    }
    if cache is not None:
        document["cache"] = cache
    if spans is not None:
        document["spans"] = spans
    if dispatch is not None:
        document["dispatch"] = dispatch
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def read_timing(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a timing sidecar written by :func:`write_timing`."""
    return json.loads(Path(path).read_text())
