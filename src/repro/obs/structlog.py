"""Structured logging for library code: events with key=value context.

Library modules must not ``print`` (OBS001), and free-form log strings
lose the context that makes a warning actionable — *which* cell's cache
entry was corrupt, under *which* fingerprint.  :func:`obs_logger` wraps a
stdlib logger in an :class:`ObsLogger` whose methods take an event name
plus keyword context and render deterministically ordered ``key=value``
pairs::

    log = obs_logger("cache")
    log.warning("cache-entry-unreadable", delta=0.05, seed=3,
                fingerprint=fp, error=str(exc))
    # -> WARNING repro.obs.cache: cache-entry-unreadable
    #    delta=0.05 error='truncated zip' fingerprint='ab12...' seed=3

The rendered message is stable for fixed context (keys sort), grep-able by
event name, and still flows through the stdlib ``logging`` tree (logger
names live under ``repro.obs.``), so applications configure handlers and
levels exactly as before.  This module is deliberately dependency-free and
side-effect-free at import time: it is safe to import from kernel-reachable
code (unlike :mod:`repro.obs.spans` and friends, which OBS002 bans there).
"""

from __future__ import annotations

import logging
from typing import Any

#: Prefix of every structured logger's stdlib name.
_LOGGER_NAMESPACE = "repro.obs"


def format_context(context: dict) -> str:
    """Render keyword context as sorted ``key=value`` pairs.

    Floats keep their repr (full precision); strings are repr-quoted so
    embedded spaces cannot split a pair; everything else goes through
    ``repr`` too.  Sorted keys make the rendering deterministic.
    """
    parts = []
    for key in sorted(context):
        value = context[key]
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            parts.append(f"{key}={value}")
        else:
            parts.append(f"{key}={value!r}")
    return " ".join(parts)


class ObsLogger:
    """A stdlib logger wrapper speaking (event, **context)."""

    def __init__(self, logger: logging.Logger) -> None:
        self.logger = logger

    def _emit(self, level: int, event: str, context: dict) -> None:
        if not self.logger.isEnabledFor(level):
            return
        rendered = format_context(context)
        if rendered:
            self.logger.log(level, "%s %s", event, rendered)
        else:
            self.logger.log(level, "%s", event)

    def debug(self, event: str, **context: Any) -> None:
        self._emit(logging.DEBUG, event, context)

    def info(self, event: str, **context: Any) -> None:
        self._emit(logging.INFO, event, context)

    def warning(self, event: str, **context: Any) -> None:
        self._emit(logging.WARNING, event, context)

    def error(self, event: str, **context: Any) -> None:
        self._emit(logging.ERROR, event, context)

    def __repr__(self) -> str:
        return f"<ObsLogger {self.logger.name}>"


def obs_logger(name: str) -> ObsLogger:
    """The structured logger ``repro.obs.<name>``."""
    return ObsLogger(logging.getLogger(f"{_LOGGER_NAMESPACE}.{name}"))
