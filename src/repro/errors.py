"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An invariant of the discrete-event kernel was violated."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class AddressError(NetworkError):
    """An address or node name could not be resolved."""


class RoutingError(NetworkError):
    """No route exists between two nodes, or a routing table is malformed."""


class PortInUseError(NetworkError):
    """A UDP port is already bound on the host."""


class PacketFormatError(NetworkError):
    """A probe packet payload could not be encoded or decoded."""


class ConfigurationError(ReproError):
    """An experiment or topology was configured with invalid parameters."""


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class InsufficientDataError(AnalysisError):
    """Not enough (non-lost) samples to compute the requested statistic."""


class FitError(AnalysisError):
    """A model fit (gamma, AR, Gilbert, ...) failed to converge."""
