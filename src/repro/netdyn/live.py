"""Live-network NetDyn: a real UDP echo server and prober over asyncio.

This is the same measurement tool as the simulated agents, but speaking the
same wire format over real sockets, so the library can probe real paths (or
loopback, as the tests do).  The echo server forwards probes back to the
address they came from — i.e. the source host is the destination host,
exactly the clock-safe configuration the paper uses.

Example
-------
Run an echo server::

    python -m repro.cli echo --port 5201

Probe it::

    from repro.netdyn.live import probe
    trace = asyncio.run(probe("127.0.0.1", 5201, delta=0.02, count=500))
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, PacketFormatError
from repro.netdyn import packetfmt
from repro.netdyn.trace import LOST, ProbeTrace


class EchoServerProtocol(asyncio.DatagramProtocol):
    """Stamps the echo timestamp and returns probes to their sender."""

    def __init__(self) -> None:
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.echoed = 0

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            stamped = packetfmt.stamp_echo_time(data, time.monotonic())
        except PacketFormatError:
            return  # not a probe; ignore
        assert self.transport is not None
        self.echoed += 1
        self.transport.sendto(stamped, addr)


async def serve_echo(host: str = "0.0.0.0", port: int = 5201,
                     ) -> tuple[asyncio.DatagramTransport, EchoServerProtocol]:
    """Start a probe echo server; caller closes the returned transport."""
    loop = asyncio.get_running_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        EchoServerProtocol, local_addr=(host, port))
    return transport, protocol  # type: ignore[return-value]


class _ProberProtocol(asyncio.DatagramProtocol):
    """Receives returned probes and records their round-trip times."""

    def __init__(self) -> None:
        self.rtts: dict[int, float] = {}
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]

    def datagram_received(self, data: bytes, addr) -> None:
        arrival = time.monotonic()
        try:
            header = packetfmt.decode_probe(data)
        except PacketFormatError:
            return
        if header.source_time is None or header.seq in self.rtts:
            return
        self.rtts[header.seq] = arrival - header.source_time


async def probe(host: str, port: int, delta: float, count: int,
                payload_bytes: int = packetfmt.PROBE_PAYLOAD_BYTES,
                drain: float = 1.0,
                meta: Optional[dict] = None) -> ProbeTrace:
    """Send ``count`` probes every ``delta`` seconds to a live echo server.

    Timestamps use ``time.monotonic()`` on the probing host only, so clock
    offset between prober and echo server does not matter (the echo
    timestamp is recorded in the packet but not used for RTTs, just as in
    the paper).
    """
    if delta <= 0:
        raise ConfigurationError(f"delta must be positive, got {delta}")
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    loop = asyncio.get_running_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        _ProberProtocol, remote_addr=(host, port))
    send_times = []
    try:
        start = time.monotonic()
        for seq in range(count):
            target = start + seq * delta
            now = time.monotonic()
            if target > now:
                await asyncio.sleep(target - now)
            send_time = time.monotonic()
            payload = packetfmt.encode_probe(seq, source_time=send_time,
                                             payload_bytes=payload_bytes)
            transport.sendto(payload)
            send_times.append(send_time)
        await asyncio.sleep(drain)
    finally:
        transport.close()

    rtts = np.full(count, LOST)
    for seq, rtt in protocol.rtts.items():
        if 0 <= seq < count:
            rtts[seq] = rtt
    trace_meta = {"target": f"{host}:{port}", "live": True}
    trace_meta.update(meta or {})
    return ProbeTrace(delta=delta,
                      send_times=np.asarray(send_times) - send_times[0],
                      rtts=rtts, payload_bytes=payload_bytes,
                      wire_bytes=payload_bytes + 40, meta=trace_meta)
