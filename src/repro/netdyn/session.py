"""One-call driver for a NetDyn measurement over a simulated network.

:func:`run_probe_experiment` wires a :class:`~repro.netdyn.source.SourceAgent`
and an :class:`~repro.netdyn.echo.EchoAgent` onto an existing
:class:`~repro.net.routing.Network`, runs the simulator for the duration of
the probe train plus a drain period, and returns the resulting
:class:`~repro.netdyn.trace.ProbeTrace`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.net.routing import Network
from repro.netdyn import packetfmt
from repro.netdyn.echo import ECHO_PORT, EchoAgent
from repro.netdyn.source import SINK_PORT, SourceAgent
from repro.netdyn.trace import ProbeTrace
from repro.units import seconds_to_ms

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.registry import MetricsRegistry

#: Extra simulated time after the last probe is sent, letting stragglers
#: return before they are declared lost.  Generous relative to any RTT the
#: calibrated topologies can produce.
DEFAULT_DRAIN = 5.0


def run_probe_experiment(network: Network, source: str, echo: str,
                         delta: float, count: Optional[int] = None,
                         duration: Optional[float] = None,
                         payload_bytes: int = packetfmt.PROBE_PAYLOAD_BYTES,
                         drain: float = DEFAULT_DRAIN,
                         start_at: float = 0.0,
                         meta: Optional[dict] = None,
                         registry: Optional["MetricsRegistry"] = None,
                         ) -> ProbeTrace:
    """Run a NetDyn experiment and return its trace.

    Exactly one of ``count`` and ``duration`` must be given; ``duration``
    (seconds) is converted to a probe count, matching the paper's "each
    experiment lasts 10 minutes" specification.

    Parameters
    ----------
    network:
        A built network with routes computed.  Traffic sources attached to
        it keep running during the measurement.
    source, echo:
        Host names of the probe source (= destination) and echo hosts.
    delta:
        Probe interval in seconds.
    start_at:
        Simulation time of the first probe.  Set it past zero to let cross
        traffic reach steady state first (warm-up).
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`; when given, the
        session registers its probe counters (``netdyn/probes_sent``,
        ``duplicates``, ``reordered``, ``echo_forwarded``) as pull-based
        instruments, so they appear in the run's metrics snapshot.
    """
    if (count is None) == (duration is None):
        raise ConfigurationError("give exactly one of count / duration")
    if duration is not None:
        count = max(1, int(round(duration / delta)))
    assert count is not None

    source_host = network.host(source)
    echo_host = network.host(echo)

    agent = SourceAgent(source_host, echo_host=echo, echo_port=ECHO_PORT,
                        delta=delta, count=count,
                        payload_bytes=payload_bytes)
    echoer = EchoAgent(echo_host, destination=source,
                       destination_port=SINK_PORT)
    if registry is not None:
        registry.counter("netdyn/probes_sent",
                         source=lambda: agent.sent,
                         description="probes emitted by the source agent")
        registry.counter("netdyn/duplicates",
                         source=lambda: agent.duplicates,
                         description="duplicate probe returns discarded")
        registry.counter("netdyn/reordered",
                         source=lambda: agent.reordered,
                         description="probes that returned out of order")
        registry.counter("netdyn/echo_forwarded",
                         source=lambda: echoer.echoed,
                         description="probes bounced back by the echo agent")
    agent.start(at=start_at)

    end_time = start_at + count * delta + drain
    network.sim.run(until=end_time)

    trace_meta = {"delta_ms": seconds_to_ms(delta), "count": count}
    trace_meta.update(meta or {})
    trace = agent.trace(meta=trace_meta)
    agent.close()
    echoer.close()
    return trace
