"""NetDyn probe wire format.

The paper (Section 2) describes the probe payload as a unique packet number
plus three 6-byte timestamp fields — source, echo, and destination — written
respectively when the source sends the packet, when the intermediate host
echoes it, and when it returns to the destination (= source) host.

This module encodes exactly that layout into the probe's 32-byte payload:

====== ===== ==========================================
offset bytes field
====== ===== ==========================================
0      4     sequence number (big-endian unsigned)
4      6     source timestamp, microseconds
10     6     echo timestamp, microseconds
16     6     destination timestamp, microseconds
22     10    padding (zero)
====== ===== ==========================================

Timestamps are unsigned 48-bit microsecond counts (wraps after ~8.9 years,
far beyond any experiment).  A timestamp of all-ones means "not yet written".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import PacketFormatError
from repro.units import BITS_PER_BYTE

#: Default probe payload size used in all the paper's experiments.
PROBE_PAYLOAD_BYTES = 32

#: Minimum payload that fits the header fields.
MIN_PAYLOAD_BYTES = 22

_SEQ_BYTES = 4
_STAMP_BYTES = 6
_UNSET = (1 << (BITS_PER_BYTE * _STAMP_BYTES)) - 1
_MICROSECOND = 1e-6


@dataclass
class ProbeHeader:
    """Decoded probe fields; timestamps are seconds or None if unwritten."""

    seq: int
    source_time: Optional[float]
    echo_time: Optional[float]
    destination_time: Optional[float]


def _encode_stamp(value: Optional[float]) -> bytes:
    if value is None:
        return _UNSET.to_bytes(_STAMP_BYTES, "big")
    if value < 0:
        raise PacketFormatError(f"timestamp must be >= 0, got {value}")
    micros = int(round(value / _MICROSECOND))
    if micros >= _UNSET:
        raise PacketFormatError(f"timestamp {value} s overflows 48 bits")
    return micros.to_bytes(_STAMP_BYTES, "big")


def _decode_stamp(blob: bytes) -> Optional[float]:
    micros = int.from_bytes(blob, "big")
    if micros == _UNSET:
        return None
    return micros * _MICROSECOND


def encode_probe(seq: int, source_time: Optional[float] = None,
                 echo_time: Optional[float] = None,
                 destination_time: Optional[float] = None,
                 payload_bytes: int = PROBE_PAYLOAD_BYTES) -> bytes:
    """Build a probe payload of ``payload_bytes`` bytes."""
    if payload_bytes < MIN_PAYLOAD_BYTES:
        raise PacketFormatError(
            f"payload must be at least {MIN_PAYLOAD_BYTES} bytes, "
            f"got {payload_bytes}")
    if not 0 <= seq < (1 << (BITS_PER_BYTE * _SEQ_BYTES)):
        raise PacketFormatError(f"sequence number {seq} out of range")
    header = (seq.to_bytes(_SEQ_BYTES, "big")
              + _encode_stamp(source_time)
              + _encode_stamp(echo_time)
              + _encode_stamp(destination_time))
    return header + bytes(payload_bytes - len(header))


def decode_probe(payload: bytes) -> ProbeHeader:
    """Parse a probe payload produced by :func:`encode_probe`."""
    if len(payload) < MIN_PAYLOAD_BYTES:
        raise PacketFormatError(
            f"probe payload too short: {len(payload)} bytes")
    seq = int.from_bytes(payload[:_SEQ_BYTES], "big")
    offset = _SEQ_BYTES
    stamps = []
    for _ in range(3):
        stamps.append(_decode_stamp(payload[offset:offset + _STAMP_BYTES]))
        offset += _STAMP_BYTES
    return ProbeHeader(seq=seq, source_time=stamps[0], echo_time=stamps[1],
                       destination_time=stamps[2])


def quantize_stamp(value: float) -> float:
    """The value a timestamp reads back as after encode + decode.

    Timestamps ride the wire as 48-bit microsecond counts, so a written
    stamp loses sub-microsecond precision.  The analytic execution mode
    (:mod:`repro.experiments.fastforward`) never builds real packets but
    must reproduce event-mode RTTs bit-for-bit, so it quantizes its clock
    readings through this helper.
    """
    if value < 0:
        raise PacketFormatError(f"timestamp must be >= 0, got {value}")
    micros = int(round(value / _MICROSECOND))
    if micros >= _UNSET:
        raise PacketFormatError(f"timestamp {value} s overflows 48 bits")
    return micros * _MICROSECOND


def quantize_stamps(values) -> "np.ndarray":
    """Vectorized :func:`quantize_stamp` over an array of readings.

    Bit-identical to mapping :func:`quantize_stamp` over ``values``:
    ``np.round`` applies the same round-half-even rule as Python's
    ``round``, and every microsecond count below the 48-bit ceiling is
    exactly representable in float64, so the final product matches the
    scalar ``int * float`` result exactly.  Out-of-range readings defer
    to the scalar path so the error message (and type) stay identical.
    """
    readings = np.asarray(values, dtype=float)
    micros = np.round(readings / _MICROSECOND)
    if readings.size and (readings.min() < 0 or micros.max() >= _UNSET):
        for value in readings:        # pragma: no cover - error replay
            quantize_stamp(float(value))
    return micros * _MICROSECOND


def stamp_echo_time(payload: bytes, echo_time: float) -> bytes:
    """Return a copy of ``payload`` with the echo timestamp written."""
    header = decode_probe(payload)
    return encode_probe(header.seq, header.source_time, echo_time,
                        header.destination_time, payload_bytes=len(payload))


def stamp_destination_time(payload: bytes, destination_time: float) -> bytes:
    """Return a copy of ``payload`` with the destination timestamp written."""
    header = decode_probe(payload)
    return encode_probe(header.seq, header.source_time, header.echo_time,
                        destination_time, payload_bytes=len(payload))
