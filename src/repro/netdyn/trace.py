"""The :class:`ProbeTrace` container: one NetDyn experiment's measurements.

A trace records, for every probe ``n``, the send time ``s_n`` and round-trip
time ``rtt_n``; following the paper's convention, ``rtt_n = 0`` marks a lost
probe.  All analysis modules (:mod:`repro.analysis`) consume this type, and
it round-trips through CSV and JSON so live-network traces and simulated
traces are interchangeable.
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import AnalysisError, InsufficientDataError
from repro.units import seconds_to_ms

#: Sentinel round-trip value for lost probes (the paper's convention).
LOST = 0.0

#: Local-file-header fixed size in a zip archive (the npz container);
#: the filename and extra fields follow it, then the member's bytes.
_ZIP_LOCAL_HEADER_BYTES = 30


def npz_mapping(path: Union[str, Path],
                mmap_mode: Optional[str] = None) -> "dict[str, np.ndarray]":
    """The arrays of an npz file, optionally memory-mapped.

    ``np.savez`` stores members uncompressed (``ZIP_STORED``), so each
    ``.npy`` member sits contiguously in the file and can be mapped in
    place instead of copied out: with ``mmap_mode`` set, float64 columns
    come back as read-only ``np.memmap`` views whose pages fault in only
    when touched — a batched cache lookup that only needs headers never
    pays for the sample data.  Zero-dimensional members (JSON headers)
    are always read eagerly; any irregularity (compressed member,
    malformed local header) falls back to a plain ``np.load`` copy of
    that member, so the mapping is an optimization, never a correctness
    input.  Raises :class:`AnalysisError` on an unreadable file, like
    :meth:`ProbeTrace.load_npz`.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    fallback: list[str] = []
    try:
        with zipfile.ZipFile(path) as archive, path.open("rb") as raw:
            for info in archive.infolist():
                name = info.filename
                key = name[:-4] if name.endswith(".npy") else name
                if mmap_mode is None or info.compress_type:
                    fallback.append(key)
                    continue
                try:
                    raw.seek(info.header_offset)
                    local = raw.read(_ZIP_LOCAL_HEADER_BYTES)
                    name_len = int.from_bytes(local[26:28], "little")
                    extra_len = int.from_bytes(local[28:30], "little")
                    raw.seek(info.header_offset + _ZIP_LOCAL_HEADER_BYTES
                             + name_len + extra_len)
                    version = np.lib.format.read_magic(raw)
                    if version == (1, 0):
                        shape, fortran, dtype = \
                            np.lib.format.read_array_header_1_0(raw)
                    else:
                        shape, fortran, dtype = \
                            np.lib.format.read_array_header_2_0(raw)
                    if fortran or dtype.hasobject or shape == ():
                        fallback.append(key)
                        continue
                    arrays[key] = np.memmap(path, dtype=dtype, mode="r",
                                            offset=raw.tell(), shape=shape)
                except (OSError, ValueError, KeyError):
                    fallback.append(key)
        if fallback:
            with np.load(path, allow_pickle=False) as data:
                for key in fallback:
                    arrays[key] = data[key]
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise AnalysisError(
            f"{path}: not a readable npz archive: {exc}") from exc
    return arrays

#: Layout version of the binary (npz) trace format; bump on changes.
NPZ_FORMAT_VERSION = 1


@dataclass
class ProbeTrace:
    """Measured round-trip delays of periodic probes.

    Attributes
    ----------
    delta:
        Interval between probe send times, seconds (the paper's ``δ``).
    send_times:
        ``s_n`` for every probe, seconds (source host clock).
    rtts:
        ``rtt_n`` for every probe, seconds; ``0.0`` marks a loss.
    payload_bytes:
        Probe UDP payload size (32 in the paper).
    wire_bytes:
        Probe size on the wire (the paper's ``P`` = 72 bytes).
    meta:
        Free-form experiment metadata (path, seed, bottleneck rate, ...).
    """

    delta: float
    send_times: np.ndarray
    rtts: np.ndarray
    payload_bytes: int = 32
    wire_bytes: int = 72
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.send_times = np.asarray(self.send_times, dtype=float)
        self.rtts = np.asarray(self.rtts, dtype=float)
        if self.send_times.shape != self.rtts.shape:
            raise AnalysisError(
                f"send_times and rtts lengths differ: "
                f"{self.send_times.shape} vs {self.rtts.shape}")
        if self.delta <= 0:
            raise AnalysisError(f"delta must be positive, got {self.delta}")
        if np.any(self.rtts < 0):
            raise AnalysisError("negative rtt in trace")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rtts)

    @property
    def lost(self) -> np.ndarray:
        """Boolean mask, True where the probe was lost."""
        return self.rtts == LOST

    @property
    def received(self) -> np.ndarray:
        """Boolean mask, True where the probe came back."""
        return ~self.lost

    @property
    def valid_rtts(self) -> np.ndarray:
        """Round-trip times of received probes only."""
        return self.rtts[self.received]

    @property
    def loss_count(self) -> int:
        """Number of lost probes."""
        return int(np.count_nonzero(self.lost))

    @property
    def loss_fraction(self) -> float:
        """Fraction of probes lost (the paper's ``ulp`` for this trace)."""
        if len(self) == 0:
            return 0.0
        return self.loss_count / len(self)

    def min_rtt(self) -> float:
        """Smallest observed round trip; estimator of the fixed delay D."""
        valid = self.valid_rtts
        if valid.size == 0:
            raise InsufficientDataError("no received probes in trace")
        return float(valid.min())

    def queueing_delays(self, base_delay: Optional[float] = None) -> np.ndarray:
        """``w_n = rtt_n - D`` for received probes; NaN where lost.

        ``base_delay`` defaults to :meth:`min_rtt`, the standard estimator
        of the fixed component D (propagation + transmission).
        """
        base = self.min_rtt() if base_delay is None else base_delay
        delays = np.where(self.received, self.rtts - base, np.nan)
        return delays

    def slice(self, start: int, stop: int) -> "ProbeTrace":
        """A sub-trace of probes ``start <= n < stop`` (metadata shared)."""
        return ProbeTrace(delta=self.delta,
                          send_times=self.send_times[start:stop],
                          rtts=self.rtts[start:stop],
                          payload_bytes=self.payload_bytes,
                          wire_bytes=self.wire_bytes,
                          meta=dict(self.meta))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, delta: float,
                     rtts: Sequence[Optional[float]],
                     payload_bytes: int = 32, wire_bytes: int = 72,
                     meta: Optional[dict[str, Any]] = None) -> "ProbeTrace":
        """Build a trace from rtt samples; ``None`` or 0 marks a loss."""
        cleaned = [LOST if (r is None or r == LOST) else float(r)
                   for r in rtts]
        send_times = np.arange(len(cleaned)) * delta
        return cls(delta=delta, send_times=send_times,
                   rtts=np.asarray(cleaned), payload_bytes=payload_bytes,
                   wire_bytes=wire_bytes, meta=dict(meta or {}))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_csv(self, path: Union[str, Path]) -> None:
        """Write ``n, s_n, rtt_n`` rows; metadata goes in ``#`` comments.

        The row block is formatted in one batch (list comprehension over
        plain-Python floats, a single ``join``, a single ``write``) rather
        than through per-row ``csv.writer`` calls — several times faster on
        long traces — while producing byte-identical output to the
        historical writer (``\\n``-terminated header comments, ``\\r\\n``
        row terminators, ``.9f`` fields; pinned by the golden-trace test).
        """
        path = Path(path)
        send_times = self.send_times.tolist()
        rtts = self.rtts.tolist()
        rows = [f"{n},{s:.9f},{r:.9f}"
                for n, (s, r) in enumerate(zip(send_times, rtts))]
        with path.open("w", newline="") as handle:
            handle.write(f"# delta={self.delta!r}\n")
            handle.write(f"# payload_bytes={self.payload_bytes}\n")
            handle.write(f"# wire_bytes={self.wire_bytes}\n")
            handle.write(f"# meta={json.dumps(self.meta, sort_keys=True)}\n")
            handle.write("n,send_time,rtt\r\n")
            if rows:
                handle.write("\r\n".join(rows))
                handle.write("\r\n")

    @staticmethod
    def _parse_rows_slow(path: Path, rows: "list[tuple[int, str]]",
                         ) -> "tuple[list[float], list[float]]":
        """Row-by-row data parse with exact ``file:line`` diagnostics.

        The authoritative (historical) parser: the vectorized fast path in
        :meth:`load_csv` defers to this whenever anything about the data
        block looks unusual, so malformed rows always surface the same
        :class:`AnalysisError` they did before vectorization.
        """
        send_times: list[float] = []
        rtts: list[float] = []
        for lineno, line in rows:
            fields = line.split(",")
            if len(fields) != 3:
                raise AnalysisError(
                    f"{path}:{lineno}: expected 3 fields "
                    f"(n, send_time, rtt), got {len(fields)}: {line!r}")
            try:
                send_times.append(float(fields[1]))
                rtts.append(float(fields[2]))
            except ValueError as exc:
                raise AnalysisError(
                    f"{path}:{lineno}: non-numeric field in row "
                    f"{line!r}") from exc
        return send_times, rtts

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "ProbeTrace":
        """Read a trace written by :meth:`save_csv`.

        Well-formed data blocks are parsed in one ``np.loadtxt`` call (a C
        parser, not a Python loop); any anomaly — wrong field count, a
        non-numeric field — falls back to the row-by-row parser, which
        raises :class:`AnalysisError` naming the exact file and line.
        """
        path = Path(path)
        header: dict[str, Any] = {"delta": None, "payload_bytes": 32,
                                  "wire_bytes": 72, "meta": {}}
        rows: list[tuple[int, str]] = []
        with path.open() as handle:
            for lineno, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    key, _, value = line[1:].strip().partition("=")
                    key = key.strip()
                    if key == "meta":
                        header["meta"] = json.loads(value)
                    elif key in header:
                        header[key] = float(value) if key == "delta" \
                            else int(value)
                    continue
                if line.startswith("n,"):
                    continue
                rows.append((lineno, line))

        send_times: Union[np.ndarray, list[float]]
        rtts: Union[np.ndarray, list[float]]
        if rows:
            try:
                block = np.loadtxt(
                    io.StringIO("\n".join(line for _, line in rows)),
                    delimiter=",", dtype=float, ndmin=2)
            except Exception:
                block = None
            if block is not None and block.shape[1] == 3:
                send_times, rtts = block[:, 1], block[:, 2]
            else:
                send_times, rtts = cls._parse_rows_slow(path, rows)
        else:
            send_times, rtts = [], []
        if header["delta"] is None:
            if len(send_times) >= 2:
                header["delta"] = float(send_times[1] - send_times[0])
            else:
                raise AnalysisError(f"{path}: no delta header and <2 samples")
        return cls(delta=header["delta"], send_times=np.asarray(send_times),
                   rtts=np.asarray(rtts),
                   payload_bytes=header["payload_bytes"],
                   wire_bytes=header["wire_bytes"], meta=header["meta"])

    def save_npz(self, file: Union[str, Path, BinaryIO],
                 extra: Optional[Mapping[str, Any]] = None) -> None:
        """Write the binary columnar form of the trace.

        ``send_times`` and ``rtts`` are stored as raw float64 arrays (no
        text round-trip, so the reload is bit-exact) and the scalar header
        (delta, payload/wire bytes, free-form ``meta``) as one embedded
        JSON document.  ``extra`` names additional arrays (or strings,
        stored as 0-d unicode arrays) persisted alongside — the campaign
        cell cache rides its cell payload on this.  ``file`` may be a path
        or an open binary file object (the cache writes to a temp file and
        renames it into place for atomicity).
        """
        header = json.dumps({
            "format_version": NPZ_FORMAT_VERSION,
            "delta": self.delta,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "meta": self.meta,
        })
        arrays: dict[str, np.ndarray] = {
            "send_times": np.ascontiguousarray(self.send_times,
                                               dtype=np.float64),
            "rtts": np.ascontiguousarray(self.rtts, dtype=np.float64),
            "header": np.array(header),
        }
        for name, value in (extra or {}).items():
            if name in arrays:
                raise AnalysisError(
                    f"extra array {name!r} collides with a trace field")
            arrays[name] = np.asarray(value)
        if hasattr(file, "write"):
            np.savez(file, **arrays)
        else:
            with Path(file).open("wb") as handle:  # type: ignore[arg-type]
                np.savez(handle, **arrays)

    @classmethod
    def from_npz_mapping(cls, data: Mapping[str, np.ndarray]) -> "ProbeTrace":
        """Rebuild a trace from the arrays of an open npz file.

        Split out of :meth:`load_npz` so consumers that embed extra arrays
        next to the trace (the campaign cell cache) can decode the trace
        from an ``np.load`` handle they already hold.
        """
        header = json.loads(str(data["header"][()]))
        return cls(delta=header["delta"],
                   send_times=np.asarray(data["send_times"], dtype=float),
                   rtts=np.asarray(data["rtts"], dtype=float),
                   payload_bytes=header["payload_bytes"],
                   wire_bytes=header["wire_bytes"], meta=header["meta"])

    @classmethod
    def load_npz(cls, path: Union[str, Path]) -> "ProbeTrace":
        """Read a trace written by :meth:`save_npz`.

        Raises :class:`AnalysisError` on anything unreadable — truncated
        zip, missing arrays, garbled header JSON — so callers can treat a
        damaged file as one condition.
        """
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                return cls.from_npz_mapping(data)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise AnalysisError(
                f"{path}: not a readable ProbeTrace npz: {exc}") from exc

    def to_json(self) -> str:
        """Serialize the full trace as a JSON document."""
        return json.dumps({
            "delta": self.delta,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "meta": self.meta,
            "send_times": self.send_times.tolist(),
            "rtts": self.rtts.tolist(),
        })

    @classmethod
    def from_json(cls, document: str) -> "ProbeTrace":
        """Deserialize a trace produced by :meth:`to_json`."""
        data = json.loads(document)
        return cls(delta=data["delta"],
                   send_times=np.asarray(data["send_times"]),
                   rtts=np.asarray(data["rtts"]),
                   payload_bytes=data["payload_bytes"],
                   wire_bytes=data["wire_bytes"], meta=data["meta"])

    def __repr__(self) -> str:
        return (f"<ProbeTrace delta={seconds_to_ms(self.delta):g}ms "
                f"n={len(self)} "
                f"loss={self.loss_fraction:.1%}>")
