"""The :class:`ProbeTrace` container: one NetDyn experiment's measurements.

A trace records, for every probe ``n``, the send time ``s_n`` and round-trip
time ``rtt_n``; following the paper's convention, ``rtt_n = 0`` marks a lost
probe.  All analysis modules (:mod:`repro.analysis`) consume this type, and
it round-trips through CSV and JSON so live-network traces and simulated
traces are interchangeable.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.errors import AnalysisError, InsufficientDataError
from repro.units import seconds_to_ms

#: Sentinel round-trip value for lost probes (the paper's convention).
LOST = 0.0


@dataclass
class ProbeTrace:
    """Measured round-trip delays of periodic probes.

    Attributes
    ----------
    delta:
        Interval between probe send times, seconds (the paper's ``δ``).
    send_times:
        ``s_n`` for every probe, seconds (source host clock).
    rtts:
        ``rtt_n`` for every probe, seconds; ``0.0`` marks a loss.
    payload_bytes:
        Probe UDP payload size (32 in the paper).
    wire_bytes:
        Probe size on the wire (the paper's ``P`` = 72 bytes).
    meta:
        Free-form experiment metadata (path, seed, bottleneck rate, ...).
    """

    delta: float
    send_times: np.ndarray
    rtts: np.ndarray
    payload_bytes: int = 32
    wire_bytes: int = 72
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.send_times = np.asarray(self.send_times, dtype=float)
        self.rtts = np.asarray(self.rtts, dtype=float)
        if self.send_times.shape != self.rtts.shape:
            raise AnalysisError(
                f"send_times and rtts lengths differ: "
                f"{self.send_times.shape} vs {self.rtts.shape}")
        if self.delta <= 0:
            raise AnalysisError(f"delta must be positive, got {self.delta}")
        if np.any(self.rtts < 0):
            raise AnalysisError("negative rtt in trace")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rtts)

    @property
    def lost(self) -> np.ndarray:
        """Boolean mask, True where the probe was lost."""
        return self.rtts == LOST

    @property
    def received(self) -> np.ndarray:
        """Boolean mask, True where the probe came back."""
        return ~self.lost

    @property
    def valid_rtts(self) -> np.ndarray:
        """Round-trip times of received probes only."""
        return self.rtts[self.received]

    @property
    def loss_count(self) -> int:
        """Number of lost probes."""
        return int(np.count_nonzero(self.lost))

    @property
    def loss_fraction(self) -> float:
        """Fraction of probes lost (the paper's ``ulp`` for this trace)."""
        if len(self) == 0:
            return 0.0
        return self.loss_count / len(self)

    def min_rtt(self) -> float:
        """Smallest observed round trip; estimator of the fixed delay D."""
        valid = self.valid_rtts
        if valid.size == 0:
            raise InsufficientDataError("no received probes in trace")
        return float(valid.min())

    def queueing_delays(self, base_delay: Optional[float] = None) -> np.ndarray:
        """``w_n = rtt_n - D`` for received probes; NaN where lost.

        ``base_delay`` defaults to :meth:`min_rtt`, the standard estimator
        of the fixed component D (propagation + transmission).
        """
        base = self.min_rtt() if base_delay is None else base_delay
        delays = np.where(self.received, self.rtts - base, np.nan)
        return delays

    def slice(self, start: int, stop: int) -> "ProbeTrace":
        """A sub-trace of probes ``start <= n < stop`` (metadata shared)."""
        return ProbeTrace(delta=self.delta,
                          send_times=self.send_times[start:stop],
                          rtts=self.rtts[start:stop],
                          payload_bytes=self.payload_bytes,
                          wire_bytes=self.wire_bytes,
                          meta=dict(self.meta))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, delta: float,
                     rtts: Sequence[Optional[float]],
                     payload_bytes: int = 32, wire_bytes: int = 72,
                     meta: Optional[dict[str, Any]] = None) -> "ProbeTrace":
        """Build a trace from rtt samples; ``None`` or 0 marks a loss."""
        cleaned = [LOST if (r is None or r == LOST) else float(r)
                   for r in rtts]
        send_times = np.arange(len(cleaned)) * delta
        return cls(delta=delta, send_times=send_times,
                   rtts=np.asarray(cleaned), payload_bytes=payload_bytes,
                   wire_bytes=wire_bytes, meta=dict(meta or {}))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_csv(self, path: Union[str, Path]) -> None:
        """Write ``n, s_n, rtt_n`` rows; metadata goes in ``#`` comments."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            handle.write(f"# delta={self.delta!r}\n")
            handle.write(f"# payload_bytes={self.payload_bytes}\n")
            handle.write(f"# wire_bytes={self.wire_bytes}\n")
            handle.write(f"# meta={json.dumps(self.meta, sort_keys=True)}\n")
            writer = csv.writer(handle)
            writer.writerow(["n", "send_time", "rtt"])
            for n, (s, r) in enumerate(zip(self.send_times, self.rtts)):
                writer.writerow([n, f"{s:.9f}", f"{r:.9f}"])

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "ProbeTrace":
        """Read a trace written by :meth:`save_csv`."""
        path = Path(path)
        header: dict[str, Any] = {"delta": None, "payload_bytes": 32,
                                  "wire_bytes": 72, "meta": {}}
        send_times: list[float] = []
        rtts: list[float] = []
        with path.open() as handle:
            for lineno, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    key, _, value = line[1:].strip().partition("=")
                    key = key.strip()
                    if key == "meta":
                        header["meta"] = json.loads(value)
                    elif key in header:
                        header[key] = float(value) if key == "delta" \
                            else int(value)
                    continue
                if line.startswith("n,"):
                    continue
                fields = line.split(",")
                if len(fields) != 3:
                    raise AnalysisError(
                        f"{path}:{lineno}: expected 3 fields "
                        f"(n, send_time, rtt), got {len(fields)}: {line!r}")
                try:
                    send_times.append(float(fields[1]))
                    rtts.append(float(fields[2]))
                except ValueError as exc:
                    raise AnalysisError(
                        f"{path}:{lineno}: non-numeric field in row "
                        f"{line!r}") from exc
        if header["delta"] is None:
            if len(send_times) >= 2:
                header["delta"] = send_times[1] - send_times[0]
            else:
                raise AnalysisError(f"{path}: no delta header and <2 samples")
        return cls(delta=header["delta"], send_times=np.asarray(send_times),
                   rtts=np.asarray(rtts),
                   payload_bytes=header["payload_bytes"],
                   wire_bytes=header["wire_bytes"], meta=header["meta"])

    def to_json(self) -> str:
        """Serialize the full trace as a JSON document."""
        return json.dumps({
            "delta": self.delta,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "meta": self.meta,
            "send_times": self.send_times.tolist(),
            "rtts": self.rtts.tolist(),
        })

    @classmethod
    def from_json(cls, document: str) -> "ProbeTrace":
        """Deserialize a trace produced by :meth:`to_json`."""
        data = json.loads(document)
        return cls(delta=data["delta"],
                   send_times=np.asarray(data["send_times"]),
                   rtts=np.asarray(data["rtts"]),
                   payload_bytes=data["payload_bytes"],
                   wire_bytes=data["wire_bytes"], meta=data["meta"])

    def __repr__(self) -> str:
        return (f"<ProbeTrace delta={seconds_to_ms(self.delta):g}ms "
                f"n={len(self)} "
                f"loss={self.loss_fraction:.1%}>")
