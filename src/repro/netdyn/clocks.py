"""Host clock models (re-exported from :mod:`repro.net.clocks`).

The implementations live in the network substrate because every
:class:`~repro.net.host.Host` carries a clock; they are re-exported here
because quantized clocks are first and foremost a *measurement* concern
(the DECstation 5000's 3.906 ms tick shapes the paper's figures).
"""

from repro.net.clocks import (
    Clock,
    DECSTATION_RESOLUTION,
    PerfectClock,
    QuantizedClock,
    SkewedClock,
    UMD_RESOLUTION,
)

__all__ = [
    "Clock",
    "PerfectClock",
    "QuantizedClock",
    "SkewedClock",
    "DECSTATION_RESOLUTION",
    "UMD_RESOLUTION",
]
