"""The NetDyn source agent: periodic probe sender and receiver.

The source host sends fixed-size UDP probes every ``delta`` seconds toward
the echo host and receives them back (the destination host is the source
host).  Send and receive timestamps are taken with the *host clock*, so a
quantized clock yields exactly the measurement granularity artifacts of the
paper's DECstation source.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.net.packet import Packet, UDP_WIRE_OVERHEAD_BYTES
from repro.netdyn import packetfmt
from repro.netdyn.trace import LOST, ProbeTrace

#: Default UDP port the source agent receives returned probes on.
SINK_PORT = 5202


class SourceAgent:
    """Sends probes at a fixed interval and records their round trips.

    Parameters
    ----------
    host:
        Source (= destination) host.
    echo_host:
        Node name of the echo agent's host.
    echo_port:
        UDP port of the echo agent.
    delta:
        Probe send interval, seconds.
    count:
        Total number of probes to send.
    payload_bytes:
        UDP payload size of each probe (32 in the paper).
    port:
        Local port the returned probes arrive on.
    """

    def __init__(self, host: Host, echo_host: str, echo_port: int,
                 delta: float, count: int,
                 payload_bytes: int = packetfmt.PROBE_PAYLOAD_BYTES,
                 port: int = SINK_PORT) -> None:
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        self.host = host
        self.echo_host = echo_host
        self.echo_port = echo_port
        self.delta = delta
        self.count = count
        self.payload_bytes = payload_bytes
        self.port = port
        self.sent = 0
        self.duplicates = 0
        self.reordered = 0
        self._highest_seq_seen = -1
        self._send_clock_times: list[float] = []
        self._send_sim_times: list[float] = []
        self._rtts: dict[int, float] = {}
        host.bind_udp(port, self._on_return)

    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Schedule the probe train; first probe at ``at`` (default: now)."""
        start_time = self.host.sim.now if at is None else at
        self.host.sim.call_at(start_time, self._send_next,
                              label="netdyn-first-probe")

    def _send_next(self) -> None:
        seq = self.sent
        clock_now = self.host.clock.now()
        payload = packetfmt.encode_probe(seq, source_time=clock_now,
                                         payload_bytes=self.payload_bytes)
        self._send_clock_times.append(clock_now)
        self._send_sim_times.append(self.host.sim.now)
        self.host.send_udp(self.echo_host, src_port=self.port,
                           dst_port=self.echo_port, payload=payload,
                           payload_bytes=len(payload))
        self.sent += 1
        if self.sent < self.count:
            self.host.sim.schedule(self.delta, self._send_next,
                                   label="netdyn-probe")

    def _on_return(self, packet: Packet) -> None:
        header = packetfmt.decode_probe(
            packetfmt.stamp_destination_time(packet.payload,
                                             self.host.clock.now()))
        if header.seq in self._rtts:
            self.duplicates += 1
            return
        if header.source_time is None or header.destination_time is None:
            return  # malformed probe; ignore like a real tool would
        if header.seq < self._highest_seq_seen:
            self.reordered += 1  # arrived after a later-sent probe
        else:
            self._highest_seq_seen = header.seq
        self._rtts[header.seq] = header.destination_time - header.source_time

    # ------------------------------------------------------------------
    def trace(self, meta: Optional[dict] = None) -> ProbeTrace:
        """Build the :class:`ProbeTrace` for the probes sent so far.

        Probes that have not returned are recorded as lost (``rtt = 0``),
        so call this only after allowing the network to drain.
        """
        rtts = np.full(self.sent, LOST)
        for seq, rtt in self._rtts.items():
            if seq < self.sent:
                rtts[seq] = rtt
        combined_meta = {
            "source": self.host.name,
            "echo": self.echo_host,
            "clock_resolution": self.host.clock.resolution,
            "reordered": self.reordered,
            "duplicates": self.duplicates,
        }
        combined_meta.update(meta or {})
        return ProbeTrace(delta=self.delta,
                          send_times=np.asarray(self._send_sim_times),
                          rtts=rtts, payload_bytes=self.payload_bytes,
                          wire_bytes=self.payload_bytes
                          + UDP_WIRE_OVERHEAD_BYTES,
                          meta=combined_meta)

    def close(self) -> None:
        """Release the UDP port."""
        self.host.unbind_udp(self.port)
