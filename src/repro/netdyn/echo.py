"""The NetDyn echo agent (the 'intermediate host' of the paper).

Upon receipt of a probe from the source, the echo agent immediately stamps
the echo timestamp with its local clock and forwards the probe to the
configured destination host — which, in the paper's setup, is the source
host itself, so only same-clock timestamp differences are ever interpreted.
"""

from __future__ import annotations

from repro.net.host import Host
from repro.net.packet import Packet
from repro.netdyn import packetfmt

#: Default UDP port the echo agent listens on.
ECHO_PORT = 5201


class EchoAgent:
    """UDP service that echoes NetDyn probes toward a destination host.

    Parameters
    ----------
    host:
        The host the agent runs on.
    destination:
        Node name probes are forwarded to.
    destination_port:
        UDP port of the destination's probe sink.
    port:
        Local port to listen on.
    """

    def __init__(self, host: Host, destination: str, destination_port: int,
                 port: int = ECHO_PORT) -> None:
        self.host = host
        self.destination = destination
        self.destination_port = destination_port
        self.port = port
        self.echoed = 0
        host.bind_udp(port, self._on_probe)

    def _on_probe(self, packet: Packet) -> None:
        payload = packetfmt.stamp_echo_time(packet.payload,
                                            self.host.clock.now())
        self.host.send_udp(self.destination, src_port=self.port,
                           dst_port=self.destination_port, payload=payload,
                           payload_bytes=len(payload))
        self.echoed += 1

    def close(self) -> None:
        """Release the UDP port."""
        self.host.unbind_udp(self.port)
