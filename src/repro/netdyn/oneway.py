"""One-way NetDyn measurements: when source and destination differ.

NetDyn's general configuration sends probes from a source host via the
echo host to a *different* destination host.  The paper deliberately
collapses destination onto source because "their local clocks may not be
synchronized and hence the timestamps ... would be difficult to interpret".

This module implements the general configuration so that statement can be
demonstrated quantitatively: one-way delay readings absorb the clock offset
between the two hosts wholesale, while *differences* of consecutive one-way
delays (the quantity equation (6) needs) cancel the offset and remain
usable under any constant offset — but not under clock drift.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.net.packet import Packet, UDP_WIRE_OVERHEAD_BYTES
from repro.net.routing import Network
from repro.netdyn import packetfmt
from repro.netdyn.echo import ECHO_PORT, EchoAgent
from repro.netdyn.trace import LOST, ProbeTrace

#: Port the destination (sink) agent listens on.
ONEWAY_SINK_PORT = 5203


class OneWaySinkAgent:
    """Receives probes at the destination host and logs one-way delays.

    The recorded delay for probe n is ``destination_clock(arrival) −
    source_timestamp``, i.e. exactly what a naive reading of the NetDyn
    timestamps gives — including whatever offset and drift separate the
    two host clocks.
    """

    def __init__(self, host: Host, port: int = ONEWAY_SINK_PORT) -> None:
        self.host = host
        self.port = port
        self.delays: dict[int, float] = {}
        host.bind_udp(port, self._on_probe)

    def _on_probe(self, packet: Packet) -> None:
        header = packetfmt.decode_probe(packet.payload)
        if header.source_time is None or header.seq in self.delays:
            return
        self.delays[header.seq] = (self.host.clock.now()
                                   - header.source_time)

    def close(self) -> None:
        """Release the UDP port."""
        self.host.unbind_udp(self.port)


class OneWaySourceAgent:
    """Sends the probe train (no return path needed)."""

    def __init__(self, host: Host, echo_host: str, echo_port: int,
                 delta: float, count: int,
                 payload_bytes: int = packetfmt.PROBE_PAYLOAD_BYTES) -> None:
        if delta <= 0 or count <= 0:
            raise ConfigurationError("delta and count must be positive")
        self.host = host
        self.echo_host = echo_host
        self.echo_port = echo_port
        self.delta = delta
        self.count = count
        self.payload_bytes = payload_bytes
        self.sent = 0
        self.send_times: list[float] = []

    def start(self, at: Optional[float] = None) -> None:
        """Schedule the probe train."""
        start_time = self.host.sim.now if at is None else at
        self.host.sim.call_at(start_time, self._send_next,
                              label="oneway-first-probe")

    def _send_next(self) -> None:
        payload = packetfmt.encode_probe(
            self.sent, source_time=self.host.clock.now(),
            payload_bytes=self.payload_bytes)
        self.send_times.append(self.host.sim.now)
        self.host.send_udp(self.echo_host, src_port=ONEWAY_SINK_PORT,
                           dst_port=self.echo_port, payload=payload,
                           payload_bytes=len(payload))
        self.sent += 1
        if self.sent < self.count:
            self.host.sim.schedule(self.delta, self._send_next,
                                   label="oneway-probe")


def run_one_way_experiment(network: Network, source: str, echo: str,
                           destination: str, delta: float, count: int,
                           start_at: float = 0.0, drain: float = 5.0,
                           meta: Optional[dict] = None) -> ProbeTrace:
    """Run a source -> echo -> destination experiment; one-way delays.

    The returned trace stores the (clock-polluted) one-way delays in the
    rtt slots, with losses marked 0 as usual; ``meta['one_way']`` is set so
    analyses can tell the difference.  Delay *differences* are still
    meaningful under constant clock offset — the basis of every
    equation-(6) quantity — which the tests verify.
    """
    if destination == source:
        raise ConfigurationError(
            "use run_probe_experiment for the round-trip configuration")
    source_host = network.host(source)
    destination_host = network.host(destination)
    echo_host = network.host(echo)

    sink = OneWaySinkAgent(destination_host)
    echoer = EchoAgent(echo_host, destination=destination,
                       destination_port=ONEWAY_SINK_PORT)
    agent = OneWaySourceAgent(source_host, echo_host=echo,
                              echo_port=ECHO_PORT, delta=delta, count=count)
    agent.start(at=start_at)
    network.sim.run(until=start_at + count * delta + drain)

    delays = np.full(count, LOST)
    for seq, delay in sink.delays.items():
        if 0 <= seq < count:
            # One-way "delays" can be negative under clock offset; shift
            # into the trace's nonnegative convention is the caller's
            # business, so clamp only exact zeros which would read as loss.
            delays[seq] = delay if delay != 0.0 else 1e-12
    trace_meta = {"one_way": True, "source": source,
                  "destination": destination,
                  "source_clock_resolution": source_host.clock.resolution,
                  "destination_clock_resolution":
                      destination_host.clock.resolution}
    trace_meta.update(meta or {})
    negative = delays[delays != LOST]
    if negative.size and negative.min() < 0:
        # Keep ProbeTrace's invariant (rtts >= 0) while preserving the
        # differences: record the shift applied.
        shift = -float(negative.min()) + 1e-9
        delays = np.where(delays == LOST, LOST, delays + shift)
        trace_meta["offset_shift"] = shift
    sink.close()
    echoer.close()
    return ProbeTrace(delta=delta,
                      send_times=np.asarray(agent.send_times),
                      rtts=delays,
                      payload_bytes=agent.payload_bytes,
                      wire_bytes=agent.payload_bytes
                      + UDP_WIRE_OVERHEAD_BYTES,
                      meta=trace_meta)
