"""NetDyn: the UDP probe measurement tool (Sanghi et al. [22]), rebuilt.

Simulated agents (:mod:`~repro.netdyn.source`, :mod:`~repro.netdyn.echo`,
:mod:`~repro.netdyn.session`) and a live asyncio implementation
(:mod:`~repro.netdyn.live`) share one wire format
(:mod:`~repro.netdyn.packetfmt`) and one trace container
(:mod:`~repro.netdyn.trace`).
"""

from repro.netdyn.clocks import (
    Clock,
    DECSTATION_RESOLUTION,
    PerfectClock,
    QuantizedClock,
    SkewedClock,
    UMD_RESOLUTION,
)
from repro.netdyn.echo import ECHO_PORT, EchoAgent
from repro.netdyn.packetfmt import (
    PROBE_PAYLOAD_BYTES,
    ProbeHeader,
    decode_probe,
    encode_probe,
)
from repro.netdyn.oneway import (
    OneWaySinkAgent,
    OneWaySourceAgent,
    run_one_way_experiment,
)
from repro.netdyn.session import run_probe_experiment
from repro.netdyn.source import SINK_PORT, SourceAgent
from repro.netdyn.trace import LOST, ProbeTrace

__all__ = [
    "Clock",
    "PerfectClock",
    "QuantizedClock",
    "SkewedClock",
    "DECSTATION_RESOLUTION",
    "UMD_RESOLUTION",
    "EchoAgent",
    "ECHO_PORT",
    "SourceAgent",
    "SINK_PORT",
    "ProbeHeader",
    "encode_probe",
    "decode_probe",
    "PROBE_PAYLOAD_BYTES",
    "run_probe_experiment",
    "run_one_way_experiment",
    "OneWaySinkAgent",
    "OneWaySourceAgent",
    "ProbeTrace",
    "LOST",
]
