"""Determinism rules: DET001 (entropy sources) and DET002 (set iteration).

A simulation run must be a pure function of its seed.  Wall-clock reads and
module-level RNGs break replay; iterating a ``set`` makes event order depend
on hash randomization (``PYTHONHASHSEED``) for str-keyed sets.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.devtools.core import FileContext, Finding, Rule, register
from repro.devtools.imports import ImportMap, attribute_chain, resolve_call_path

#: Call targets that read the wall clock.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
}

#: Module prefixes whose *call* targets are unseeded/global RNG state.
_RNG_PREFIXES = ("random.", "numpy.random.")


@register
class EntropySourceRule(Rule):
    """DET001: no wall clock or RandomStreams-bypassing randomness."""

    rule_id = "DET001"
    summary = ("wall-clock reads and random/numpy.random calls are banned; "
               "route randomness through sim.random.RandomStreams")
    # RandomStreams itself is the one sanctioned numpy.random client.
    exempt_suffixes = ("repro/sim/random.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None or chain[0] not in imports.bindings:
                continue
            path = resolve_call_path(node.func, imports)
            if path is None:
                continue
            if path in _WALL_CLOCK:
                yield ctx.finding(
                    self, node,
                    f"call to wall clock `{path}` is nondeterministic; "
                    f"use the simulator clock (`sim.now`) or "
                    f"`time.monotonic` for live-network elapsed time")
            elif path.startswith(_RNG_PREFIXES) or path == "random.random":
                yield ctx.finding(
                    self, node,
                    f"call to `{path}` bypasses seeded streams; draw from "
                    f"`sim.streams.get(name)` (repro.sim.random.RandomStreams)")


def _is_set_expression(node: ast.AST) -> bool:
    """True for ``set(...)``/``frozenset(...)`` calls and set displays."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register
class SetIterationRule(Rule):
    """DET002: no direct iteration over sets (unordered -> nondeterministic)."""

    rule_id = "DET002"
    summary = ("iterating a set has hash-dependent order; sort it first "
               "(`sorted(...)`) or use a list/dict")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        seen: Set[int] = set()
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expression(it) and id(it) not in seen:
                    seen.add(id(it))
                    yield ctx.finding(
                        self, it,
                        "iteration over a set is order-nondeterministic; "
                        "wrap in sorted(...) or keep a list/dict")
