"""Lightweight import-alias resolution for audit rules.

Rules that ban calls like ``numpy.random.default_rng`` must see through
aliases (``import numpy as np``, ``from numpy import random as nr``,
``from random import choice``).  :class:`ImportMap` records what each local
name binds to, and :func:`resolve_call_path` turns an attribute chain into a
fully-qualified dotted path using that map.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


class ImportMap(ast.NodeVisitor):
    """Maps local names introduced by imports to fully-qualified paths."""

    def __init__(self) -> None:
        self.bindings: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        mapping = cls()
        mapping.visit(tree)
        return mapping

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname is not None:
                self.bindings[alias.asname] = alias.name
            else:
                # ``import numpy.random`` binds the root name ``numpy``.
                root = alias.name.split(".")[0]
                self.bindings[root] = root

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never reach stdlib/numpy namespaces
        for alias in node.names:
            local = alias.asname or alias.name
            self.bindings[local] = f"{node.module}.{alias.name}"


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """Return ``["np", "random", "default_rng"]`` for ``np.random.default_rng``.

    ``None`` if the expression is not a plain name/attribute chain (e.g. it
    contains calls or subscripts).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def resolve_call_path(func: ast.AST, imports: ImportMap) -> Optional[str]:
    """Fully-qualified dotted path of a call target, or ``None``.

    The chain's root name is looked up in ``imports``; unknown roots resolve
    to themselves (locals shadowing a module produce harmless non-matches).
    """
    parts = attribute_chain(func)
    if parts is None:
        return None
    root = imports.bindings.get(parts[0], parts[0])
    return ".".join([root] + parts[1:])
