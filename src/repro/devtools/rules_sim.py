"""Simulator-encapsulation rule: SIM001.

The kernel's invariants (clock monotonicity, heap ordering, lazy
cancellation) only hold if outside code goes through the public API
(``sim.now``, ``schedule``, ``call_at``, ``pending_events``, ``streams``).
Reaching into ``sim._now`` or ``queue._heap`` from a component silently
couples it to kernel internals and lets it corrupt them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.core import FileContext, Finding, Rule, register

#: Private attributes of Simulator / EventQueue / RandomStreams.
_KERNEL_PRIVATE_ATTRS = frozenset({
    "_now",
    "_queue",
    "_running",
    "_stopped",
    "_events_executed",
    "_heap",
    "_counter",
    "_streams",
    "_seed",
})


@register
class KernelPrivateAccessRule(Rule):
    """SIM001: no private Simulator/EventQueue state access outside repro.sim."""

    rule_id = "SIM001"
    summary = ("private kernel state (`._now`, `._queue`, `._heap`, ...) may "
               "only be touched inside repro.sim; use the public API")
    # The kernel may touch its own internals.
    exempt_suffixes = (
        "repro/sim/kernel.py",
        "repro/sim/events.py",
        "repro/sim/random.py",
        "repro/sim/monitor.py",
        "repro/sim/__init__.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _KERNEL_PRIVATE_ATTRS:
                continue
            # A class touching *its own* same-named private attribute via
            # ``self``/``cls`` is unrelated to the kernel.
            if isinstance(node.value, ast.Name) and node.value.id in ("self",
                                                                     "cls"):
                continue
            yield ctx.finding(
                self, node,
                f"access to private kernel state `.{node.attr}`; use the "
                f"public Simulator/EventQueue API (now, schedule, call_at, "
                f"pending_events, streams, push/pop/peek_time)")
