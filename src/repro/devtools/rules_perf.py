"""Performance rule: PERF001 (no slot-less dataclasses on the hot path).

The simulator kernel and the network substrate allocate objects per event
and per packet; a ``@dataclass`` without ``__slots__`` carries a per-instance
``__dict__`` (space) and pays decorator-generated ``__init__``/``__eq__``
machinery (time) on exactly the allocations the hot path multiplies by
millions.  Classes in ``repro/sim/`` and ``repro/net/`` must be hand-written
``__slots__`` classes (see DESIGN.md, "Hot path") or pass ``slots=True`` —
the latter needs Python ≥ 3.10, which CI's floor predates, so in practice:
write the slots class.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.devtools.core import FileContext, Finding, Rule, register

#: Packages whose per-instance allocations sit on the event/packet hot path.
_HOT_PACKAGES = ("/repro/sim/", "/repro/net/")


def _is_dataclass_decorator(node: ast.expr) -> bool:
    """True for ``@dataclass``, ``@dataclass(...)``, and dotted forms."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr == "dataclass"
    return isinstance(node, ast.Name) and node.id == "dataclass"


def _has_slots_true(node: ast.expr) -> bool:
    """True for ``@dataclass(..., slots=True)``."""
    if not isinstance(node, ast.Call):
        return False
    return any(keyword.arg == "slots"
               and isinstance(keyword.value, ast.Constant)
               and keyword.value.value is True
               for keyword in node.keywords)


def _defines_slots(class_def: ast.ClassDef) -> bool:
    for statement in class_def.body:
        targets = ()
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = (statement.target,)
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


@register
class NoSlotlessDataclassRule(Rule):
    """PERF001: hot-path packages may not use ``@dataclass`` without slots."""

    rule_id = "PERF001"
    summary = ("@dataclass without slots is banned in repro/sim/ and "
               "repro/net/; write a __slots__ class (DESIGN.md, 'Hot path')")

    def applies_to(self, path: str) -> bool:
        posix = PurePath(path).as_posix()
        if not any(package in posix for package in _HOT_PACKAGES):
            return False
        return super().applies_to(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            dataclass_decorators = [decorator
                                    for decorator in node.decorator_list
                                    if _is_dataclass_decorator(decorator)]
            if not dataclass_decorators:
                continue
            if any(_has_slots_true(d) for d in dataclass_decorators):
                continue
            if _defines_slots(node):
                continue
            yield ctx.finding(
                self, node,
                f"dataclass {node.name!r} without __slots__ in a hot-path "
                f"package; hand-write a __slots__ class instead")
