"""Normalized-AST code fingerprints and the derived cache salt.

The campaign cell cache must invalidate whenever the *semantics* of the
code that produces a cell change — and must NOT invalidate for cosmetic
edits (comments, docstrings, blank lines, reformatting that parses to the
same tree).  Hashing file bytes gets the first half right and the second
half wrong; a hand-bumped version constant gets both halves wrong the day
someone forgets to bump it.

:func:`fingerprint_source` hashes a module's *normalized* AST: the source
is parsed, docstrings are stripped, and the tree is serialized without
line/column attributes, so only executable structure feeds the digest.
:func:`derived_cache_salt` then folds together the fingerprints of every
project module transitively imported by the campaign worker's module
(an over-approximation of the code reachable from
``repro.experiments.campaign._run_cell`` — see
:meth:`~repro.devtools.symbols.Project.import_closure`), yielding a salt
that tracks the code automatically.

The analyzer itself (``repro.devtools``) is excluded from the closure: it
computes the salt but never simulates anything, and folding it in would
invalidate every cache whenever a lint rule changes.  The campaign
telemetry modules (spans, progress, structured logging, the bench schema)
are excluded for the same reason: they observe runs without influencing
results — the telemetry-off run is byte-identical by invariant — so
editing them must not throw away every cached cell.  Changes to the
fingerprint *algorithm* are covered by :data:`FINGERPRINT_VERSION`, which
is folded into every digest.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.devtools.symbols import Project
from repro.errors import AnalysisError

#: Version of the normalization + combination scheme.  Bump when the
#: algorithm changes so old salts can never collide with new ones.
FINGERPRINT_VERSION = 1

#: The campaign worker whose module roots the reachable-code closure.
SALT_ENTRY_FUNCTION = "repro.experiments.campaign._run_cell"

#: Module subtrees excluded from the salt closure (see module docstring).
#: Telemetry modules are excluded for the same reason devtools are: they
#: never influence deterministic results (the spans/progress-off run is
#: byte-identical), so editing them must not invalidate cached cells.
SALT_EXCLUDE_PREFIXES: Tuple[str, ...] = (
    "repro.devtools",
    # Dispatch plumbing, not physics: the warm-pool transport (leases,
    # shared-memory hand-off) moves results between processes but never
    # computes them — serial==warm==spawn byte-identity is what the
    # campaign tests enforce — so editing the pool must not invalidate
    # every cached cell.
    "repro.experiments.pool",
    "repro.obs.bench",
    "repro.obs.progress",
    "repro.obs.spans",
    "repro.obs.structlog",
)

#: Human-readable prefix of every derived salt.
SALT_PREFIX = "repro-cell-v2"


def _strip_docstrings(tree: ast.Module) -> None:
    """Remove docstring expressions in place (module, class, function)."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Module, ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        body = node.body
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            node.body = body[1:] if len(body) > 1 else [ast.Pass()]


def normalized_dump(source: str, path: str = "<string>") -> str:
    """Canonical serialization of a module's executable structure.

    Comments never reach the AST; docstrings are stripped; line numbers
    and column offsets are not serialized.  Two sources that differ only
    cosmetically produce identical dumps.

    Raises
    ------
    SyntaxError
        If ``source`` does not parse.
    """
    tree = ast.parse(source, filename=path)
    _strip_docstrings(tree)
    return ast.dump(tree, annotate_fields=False, include_attributes=False)


def fingerprint_source(source: str, path: str = "<string>") -> str:
    """SHA-256 hex digest of a module's normalized AST."""
    digest = hashlib.sha256()
    digest.update(f"fingerprint-v{FINGERPRINT_VERSION}\0".encode("utf-8"))
    digest.update(normalized_dump(source, path=path).encode("utf-8"))
    return digest.hexdigest()


def fingerprint_file(path: Union[str, Path]) -> str:
    """Fingerprint of one source file (see :func:`fingerprint_source`)."""
    path = Path(path)
    return fingerprint_source(path.read_text(encoding="utf-8"),
                              path=path.as_posix())


@dataclass
class SaltReport:
    """The derived salt plus everything that went into it."""

    salt: str
    entry: str
    #: module name -> normalized-AST fingerprint, for every module folded
    #: into the salt (sorted iteration == combination order).
    fingerprints: Dict[str, str]
    #: total modules indexed in the project (for "N of M" reporting).
    modules_in_project: int


def _entry_module(project: Project, entry: str) -> str:
    """The module whose import closure roots the salt.

    ``entry`` may be a function qualname (preferred: it asserts the worker
    still exists) or a bare module name.
    """
    if entry in project.modules:
        return entry
    resolved = project.resolve(entry)
    if resolved is not None and resolved in project.functions:
        return project.functions[resolved].module
    raise AnalysisError(
        f"salt entry point {entry!r} not found in the project; "
        f"was the campaign worker moved or renamed?")


def compute_salt_report(project: Project,
                        entry: str = SALT_ENTRY_FUNCTION,
                        exclude_prefixes: Sequence[str]
                        = SALT_EXCLUDE_PREFIXES) -> SaltReport:
    """Derive the cache salt for an already-indexed project."""
    entry_module = _entry_module(project, entry)
    closure = project.import_closure(entry_module,
                                     exclude_prefixes=exclude_prefixes)
    fingerprints: Dict[str, str] = {}
    for name in closure:  # import_closure returns sorted names
        module = project.modules[name]
        fingerprints[name] = fingerprint_source(module.context.source,
                                                path=module.path)
    digest = hashlib.sha256()
    digest.update(f"salt-v{FINGERPRINT_VERSION}\0".encode("utf-8"))
    for name in fingerprints:
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(fingerprints[name].encode("utf-8"))
        digest.update(b"\0")
    salt = f"{SALT_PREFIX}-{digest.hexdigest()[:16]}"
    return SaltReport(salt=salt, entry=entry, fingerprints=fingerprints,
                      modules_in_project=len(project.modules))


def default_package_dir() -> Path:
    """Directory of the installed ``repro`` package sources."""
    import repro
    package_file = getattr(repro, "__file__", None)
    if package_file is None:
        raise AnalysisError("repro package has no __file__; cannot locate "
                            "sources to fingerprint")
    return Path(package_file).resolve().parent


def derived_cache_salt(package_dir: Union[str, Path, None] = None,
                       entry: str = SALT_ENTRY_FUNCTION,
                       exclude_prefixes: Sequence[str]
                       = SALT_EXCLUDE_PREFIXES) -> str:
    """The code-derived campaign cell-cache salt.

    Parses the package under ``package_dir`` (default: the installed
    ``repro`` sources), computes the import closure of the entry point's
    module, and combines the normalized-AST fingerprints of every module
    in it.  Deterministic across processes and checkouts of the same
    code; insensitive to comment/docstring-only edits; sensitive to any
    semantic edit of reachable simulation code.
    """
    return derived_salt_report(package_dir, entry=entry,
                               exclude_prefixes=exclude_prefixes).salt


def derived_salt_report(package_dir: Union[str, Path, None] = None,
                        entry: str = SALT_ENTRY_FUNCTION,
                        exclude_prefixes: Sequence[str]
                        = SALT_EXCLUDE_PREFIXES) -> SaltReport:
    """Like :func:`derived_cache_salt` but returns the full report."""
    directory = Path(package_dir) if package_dir is not None \
        else default_package_dir()
    if not directory.is_dir():
        raise AnalysisError(f"package directory {directory} does not exist")
    project = Project.from_package(directory)
    if not project.modules:
        raise AnalysisError(f"no package modules found under {directory}")
    return compute_salt_report(project, entry=entry,
                               exclude_prefixes=exclude_prefixes)


def changed_modules(before: SaltReport, after: SaltReport) -> List[str]:
    """Module names whose fingerprints differ between two reports."""
    names = set(before.fingerprints) | set(after.fingerprints)
    return sorted(name for name in names
                  if before.fingerprints.get(name)
                  != after.fingerprints.get(name))
