"""Call graph and interprocedural reachability over a :class:`Project`.

Static Python call resolution is necessarily approximate; this module errs
on the side of *over*-approximation (rapid-type-analysis style), which is
the safe direction for both consumers:

* the DET-flow rules must not miss a stochastic call hiding behind a
  callback, and
* the derived cache salt must not miss code that could influence results.

Three kinds of edges are extracted from every analyzable unit (a function,
a method, or a module body):

* **direct calls** — ``run_experiment(cfg)`` resolved through the import
  map and re-export chains to a project function;
* **references** — ``sim.call_at(t, self._emit)`` passes ``self._emit`` as
  a callback, so a bare reference to a project function counts as a
  potential call (this is how event-driven code is reached);
* **dynamic method calls** — ``obj.run()`` with an unknown receiver is
  resolved against every *live* class (one whose constructor or definition
  is reachable) that defines ``run``, iterating to a fixed point.

Module bodies are units too: importing a module executes its top-level
statements (and class bodies), so reachability from a function seeds the
module bodies of its module's import closure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.imports import (
    ImportMap,
    attribute_chain,
    resolve_call_path,
)
from repro.devtools.symbols import Project

#: Qualname prefix marking a module-body pseudo-unit.
MODULE_UNIT_SUFFIX = ".<module>"


def module_unit(module_name: str) -> str:
    """Unit name of a module's top-level body."""
    return module_name + MODULE_UNIT_SUFFIX


@dataclass
class Unit:
    """One analyzable body of code: a function, method, or module body."""

    qualname: str
    module: str
    #: AST nodes whose subtrees make up the unit's executable body.
    body: List[ast.AST]
    #: Enclosing class qualname for methods (resolves ``self.x``).
    class_qualname: Optional[str] = None

    def walk(self) -> Iterator[ast.AST]:
        for node in self.body:
            yield from ast.walk(node)


@dataclass
class UnitEdges:
    """Raw edges extracted from one unit, before liveness resolution."""

    #: Resolved project functions called or referenced.
    targets: Set[str] = field(default_factory=set)
    #: Resolved project classes instantiated or referenced.
    classes: Set[str] = field(default_factory=set)
    #: Method names invoked on receivers of unknown type.
    dynamic_names: Set[str] = field(default_factory=set)


def _module_body_nodes(tree: ast.Module) -> List[ast.AST]:
    """Top-level nodes that execute at import time.

    Function bodies are excluded (they are their own units) but their
    decorators and default expressions run at import, as do class bodies
    (again minus method bodies, plus method decorators/defaults).
    """
    nodes: List[ast.AST] = []

    def add_statements(statements: Sequence[ast.stmt]) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nodes.extend(stmt.decorator_list)
                nodes.extend(stmt.args.defaults)
                nodes.extend(d for d in stmt.args.kw_defaults
                             if d is not None)
            elif isinstance(stmt, ast.ClassDef):
                nodes.extend(stmt.decorator_list)
                nodes.extend(stmt.bases)
                nodes.extend(kw.value for kw in stmt.keywords)
                add_statements(stmt.body)
            else:
                nodes.append(stmt)

    add_statements(tree.body)
    return nodes


class CallGraph:
    """Edges and reachability queries over one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.units: Dict[str, Unit] = {}
        self._edges_cache: Dict[str, UnitEdges] = {}
        for info in project.functions.values():
            self.units[info.qualname] = Unit(
                qualname=info.qualname, module=info.module,
                body=list(info.node.body), class_qualname=info.class_qualname)
        for module in project.modules.values():
            assert isinstance(module.context.tree, ast.Module)
            self.units[module_unit(module.name)] = Unit(
                qualname=module_unit(module.name), module=module.name,
                body=_module_body_nodes(module.context.tree))

    # ------------------------------------------------------------------
    def edges_of(self, unit_name: str) -> UnitEdges:
        """Extract (and cache) the raw edges of one unit."""
        cached = self._edges_cache.get(unit_name)
        if cached is not None:
            return cached
        unit = self.units[unit_name]
        module = self.project.modules[unit.module]
        edges = UnitEdges()
        call_funcs: Set[int] = set()
        for node in unit.walk():
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
                self._record_call(unit, node, module.imports, edges)
        # Second pass: bare references (names/attributes not in call
        # position) to project functions or classes — callbacks, aliases,
        # class objects stored for later instantiation.
        for node in unit.walk():
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            if id(node) in call_funcs:
                continue
            self._record_reference(unit, node, module.imports, edges)
        self._edges_cache[unit_name] = edges
        return edges

    def _record_call(self, unit: Unit, node: ast.Call,
                     imports: ImportMap, edges: UnitEdges) -> None:
        func = node.func
        # self.method() / cls.method() inside a class body.
        if (unit.class_qualname is not None
                and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")):
            resolved = self.project.resolve_method(unit.class_qualname,
                                                   func.attr)
            if resolved is not None:
                edges.targets.add(resolved)
            return
        resolved = self._resolve_in_module(func, unit.module, imports)
        if resolved is not None:
            if resolved in self.project.classes:
                edges.classes.add(resolved)
            else:
                edges.targets.add(resolved)
            return
        if isinstance(func, ast.Attribute):
            # Unknown receiver: match by method name against live classes.
            edges.dynamic_names.add(func.attr)

    def _record_reference(self, unit: Unit, node: ast.AST,
                          imports: ImportMap, edges: UnitEdges) -> None:
        if (unit.class_qualname is not None
                and isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")):
            resolved = self.project.resolve_method(unit.class_qualname,
                                                   node.attr)
            if resolved is not None:
                edges.targets.add(resolved)
            return
        resolved = self._resolve_in_module(node, unit.module, imports)
        if resolved is None:
            return
        if resolved in self.project.classes:
            edges.classes.add(resolved)
        else:
            edges.targets.add(resolved)

    def resolve_call(self, node: ast.AST, module: str) -> Optional[str]:
        """Resolve a call/reference expression as seen from ``module``.

        Public entry point for rules that need resolution without edge
        extraction.  Returns a project function/class qualname or ``None``.
        """
        info = self.project.modules.get(module)
        if info is None:
            return None
        return self._resolve_in_module(node, module, info.imports)

    def _resolve_in_module(self, node: ast.AST, module: str,
                           imports: ImportMap) -> Optional[str]:
        """Resolve a name/attribute chain seen from inside ``module``.

        Tries the import map first (aliases, re-exports), then falls back
        to a definition in the module itself — ``helper()`` with no import
        binding is a same-module call.
        """
        chain = attribute_chain(node)
        if chain is None:
            return None
        resolved = self.project.resolve(resolve_call_path(node, imports))
        if resolved is not None:
            return resolved
        if chain[0] in imports.bindings:
            return None  # imported but resolved outside the project
        return self.project.resolve(".".join([module] + chain))

    # ------------------------------------------------------------------
    def reachable_from(self, roots: Sequence[str],
                       seed_import_closure: bool = True) -> "ReachableSet":
        """Every unit reachable from ``roots`` (function or unit names).

        With ``seed_import_closure`` (the default), the module bodies of
        each root module's import closure are reachable too — running any
        function first imports its module, which executes those bodies.
        """
        parents: Dict[str, Optional[str]] = {}
        worklist: List[str] = []

        def enqueue(unit_name: str, parent: Optional[str]) -> None:
            if unit_name in parents or unit_name not in self.units:
                return
            parents[unit_name] = parent
            worklist.append(unit_name)

        root_units = []
        for root in roots:
            if root in self.units:
                root_units.append(root)
            elif root in self.project.modules:
                root_units.append(module_unit(root))
            else:
                raise KeyError(f"unknown call-graph root {root!r}")
        for unit_name in root_units:
            enqueue(unit_name, None)
        if seed_import_closure:
            for unit_name in root_units:
                module = self.units[unit_name].module
                for name in self.project.import_closure(module):
                    enqueue(module_unit(name), unit_name)

        live_classes: Set[str] = set()
        pending_dynamic: Set[str] = set()

        def enliven(class_qualname: str, parent: str) -> None:
            for member in self.project.class_and_ancestors(class_qualname):
                if member in live_classes:
                    continue
                live_classes.add(member)
                methods = self.project.classes[member].methods
                if "__init__" in methods:
                    enqueue(methods["__init__"], parent)
                for name, qualname in methods.items():
                    if name in pending_dynamic:
                        enqueue(qualname, parent)

        while worklist:
            unit_name = worklist.pop()
            edges = self.edges_of(unit_name)
            for target in edges.targets:
                enqueue(target, unit_name)
            for class_qualname in edges.classes:
                enliven(class_qualname, unit_name)
            for name in edges.dynamic_names:
                if name in pending_dynamic:
                    continue
                pending_dynamic.add(name)
                for class_qualname in sorted(live_classes):
                    methods = self.project.classes[class_qualname].methods
                    if name in methods:
                        enqueue(methods[name], unit_name)

        return ReachableSet(graph=self, parents=parents,
                            live_classes=live_classes)


@dataclass
class ReachableSet:
    """Result of one reachability query, with provenance."""

    graph: CallGraph
    #: unit name -> the unit it was first reached from (None for roots).
    parents: Dict[str, Optional[str]]
    live_classes: Set[str]

    def __contains__(self, unit_name: str) -> bool:
        return unit_name in self.parents

    def units(self) -> List[str]:
        """Every reachable unit name, sorted."""
        return sorted(self.parents)

    def chain(self, unit_name: str) -> List[str]:
        """Root-to-unit provenance path explaining why a unit is reachable."""
        path: List[str] = []
        current: Optional[str] = unit_name
        while current is not None:
            path.append(current)
            current = self.parents.get(current)
        path.reverse()
        return path



def kernel_reachable(project: Project,
                     roots: Sequence[str]) -> Optional[Tuple[CallGraph,
                                                             ReachableSet]]:
    """Build the graph and compute reachability, if any root exists.

    Returns ``None`` when none of ``roots`` is present in the project —
    e.g. when auditing a partial tree or test fixtures — so callers can
    skip whole-program rules gracefully.
    """
    graph = CallGraph(project)
    present = [root for root in roots
               if root in graph.units or root in project.modules]
    if not present:
        return None
    return graph, graph.reachable_from(present)
