"""The ``repro-audit`` command: run every rule over a source tree.

Usage::

    repro-audit src/repro                  # text report, exit 1 on findings
    repro-audit --format json src/repro    # machine-readable (CI)
    repro-audit --select UNIT001 src/repro # one rule only
    repro-audit --list-rules
    python -m repro.devtools.audit src/repro

Exit codes: 0 clean, 1 findings, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.devtools.core import Finding, Rule, all_rules, audit_source, get_rule
from repro.devtools.reporters import render_json, render_rule_list, render_text

#: Rule id used for files that fail to parse at all.
PARSE_RULE_ID = "PARSE001"


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises
    ------
    FileNotFoundError
        If any requested path does not exist.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(path.rglob("*.py"))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(set(files))


def audit_file(path: Path, rules: Optional[Sequence[Rule]] = None,
               ) -> List[Finding]:
    """Audit one file; syntax errors become a single PARSE001 finding."""
    source = path.read_text(encoding="utf-8")
    name = path.as_posix()
    try:
        return audit_source(source, path=name, rules=rules)
    except SyntaxError as exc:
        return [Finding(rule=PARSE_RULE_ID, path=name,
                        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}")]


def audit_paths(paths: Sequence[str], rules: Optional[Sequence[Rule]] = None,
                ) -> Tuple[List[Finding], int]:
    """Audit every python file under ``paths``.

    Returns ``(findings, files_checked)`` with findings location-sorted.
    """
    files = iter_python_files(paths)
    findings: List[Finding] = []
    for path in files:
        findings.extend(audit_file(path, rules=rules))
    findings.sort(key=Finding.sort_key)
    return findings, len(files)


def _select_rules(spec: Optional[str]) -> Optional[List[Rule]]:
    if spec is None:
        return None
    rules = []
    for rule_id in spec.split(","):
        rule_id = rule_id.strip()
        if not rule_id:
            continue
        try:
            rules.append(get_rule(rule_id))
        except KeyError:
            known = ", ".join(rule.rule_id for rule in all_rules())
            raise ValueError(f"unknown rule {rule_id!r} (known: {known})") \
                from None
    return rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point shared by the console script and ``python -m``."""
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="AST lint for repro's determinism/unit-safety invariants.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to audit "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default text)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (default all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list(all_rules()))
        return 0

    try:
        rules = _select_rules(args.select)
        findings, files_checked = audit_paths(args.paths, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-audit: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings, files_checked=files_checked))
    else:
        print(render_text(findings, files_checked=files_checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
