"""The ``repro-audit`` command: run every rule over a source tree.

Usage::

    repro-audit src/repro                  # text report, exit 1 on findings
    repro-audit --format json src/repro    # machine-readable (CI)
    repro-audit --format github src/repro  # workflow annotations (CI)
    repro-audit --select UNIT001 src/repro # one rule only
    repro-audit --list-rules
    repro-audit fingerprint                # derived cache salt report
    python -m repro.devtools.audit src/repro

Per-file rules run on each module independently; whole-program rules
(``FLOW001``, ``FLOW002``, ``UNIT003``) run once over the project built
from every parseable file in the same invocation.  Exit codes: 0 clean,
1 findings, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.devtools.core import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    audit_source,
    get_rule,
)
from repro.devtools.reporters import (
    render_github,
    render_json,
    render_rule_list,
    render_text,
)

#: Rule id used for files that fail to parse at all.
PARSE_RULE_ID = "PARSE001"


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a deduplicated, sorted ``.py`` list.

    Overlapping arguments (``repro-audit src src/repro``) or the same file
    reached through different spellings (``./src`` vs ``src``) collapse to
    one entry: files are deduplicated by resolved path while keeping the
    first-seen spelling, then sorted for stable reports.

    Raises
    ------
    FileNotFoundError
        If any requested path does not exist.
    """
    by_resolved: Dict[Path, Path] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: List[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            by_resolved.setdefault(candidate.resolve(), candidate)
    return sorted(by_resolved.values())


def audit_file(path: Path, rules: Optional[Sequence[Rule]] = None,
               ) -> List[Finding]:
    """Audit one file; syntax errors become a single PARSE001 finding."""
    source = path.read_text(encoding="utf-8")
    name = path.as_posix()
    try:
        return audit_source(source, path=name, rules=rules)
    except SyntaxError as exc:
        return [Finding(rule=PARSE_RULE_ID, path=name,
                        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}")]


def _parse_contexts(files: Sequence[Path],
                    ) -> Tuple[List[FileContext], List[Finding]]:
    """Parse every file once; unparseable files yield PARSE001 findings."""
    contexts: List[FileContext] = []
    parse_findings: List[Finding] = []
    for path in files:
        name = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            contexts.append(FileContext.from_source(source, path=name))
        except SyntaxError as exc:
            parse_findings.append(Finding(
                rule=PARSE_RULE_ID, path=name,
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}"))
    return contexts, parse_findings


def _check_project(contexts: Sequence[FileContext],
                   project_rules: Sequence[ProjectRule]) -> List[Finding]:
    """Run whole-program rules once over the parsed contexts."""
    if not project_rules:
        return []
    from repro.devtools.symbols import Project
    project = Project.from_contexts(contexts)
    ctx_by_path = {ctx.path: ctx for ctx in contexts}
    findings: List[Finding] = []
    for rule in project_rules:
        for finding in rule.check_project(project):
            if not rule.applies_to(finding.path):
                continue
            ctx = ctx_by_path.get(finding.path)
            if ctx is not None and ctx.is_suppressed(finding):
                continue
            findings.append(finding)
    return findings


def audit_paths(paths: Sequence[str],
                rules: Optional[Sequence[Rule]] = None,
                project_rules: Optional[Sequence[ProjectRule]] = None,
                ) -> Tuple[List[Finding], int]:
    """Audit every python file under ``paths``, both rule layers.

    ``rules``/``project_rules`` default to every registered rule of the
    respective kind; pass an empty sequence to skip a layer entirely.
    Returns ``(findings, files_checked)`` with findings location-sorted.
    """
    files = iter_python_files(paths)
    contexts, findings = _parse_contexts(files)
    active = list(rules) if rules is not None else all_rules()
    for ctx in contexts:
        findings.extend(
            finding
            for rule in active if rule.applies_to(ctx.path)
            for finding in rule.check(ctx)
            if not ctx.is_suppressed(finding))
    active_project = list(project_rules) if project_rules is not None \
        else all_project_rules()
    findings.extend(_check_project(contexts, active_project))
    findings.sort(key=Finding.sort_key)
    return findings, len(files)


def _select_rules(spec: Optional[str],
                  ) -> Tuple[Optional[List[Rule]],
                             Optional[List[ProjectRule]]]:
    """Split a ``--select`` spec into per-file and whole-program rules."""
    if spec is None:
        return None, None
    file_rules: List[Rule] = []
    project_rules: List[ProjectRule] = []
    for rule_id in spec.split(","):
        rule_id = rule_id.strip()
        if not rule_id:
            continue
        try:
            rule = get_rule(rule_id)
        except KeyError:
            known = ", ".join(r.rule_id for r in
                              list(all_rules()) + list(all_project_rules()))
            raise ValueError(f"unknown rule {rule_id!r} (known: {known})") \
                from None
        if isinstance(rule, ProjectRule):
            project_rules.append(rule)
        else:
            file_rules.append(rule)
    return file_rules, project_rules


def _main_fingerprint(argv: Sequence[str]) -> int:
    """The ``repro-audit fingerprint`` subcommand."""
    from repro.devtools.fingerprint import (
        SALT_ENTRY_FUNCTION,
        derived_salt_report,
    )
    from repro.errors import AnalysisError

    parser = argparse.ArgumentParser(
        prog="repro-audit fingerprint",
        description="Report the code-derived campaign cell-cache salt.")
    parser.add_argument("--package", metavar="DIR", default=None,
                        help="package directory to fingerprint "
                             "(default: the installed repro sources)")
    parser.add_argument("--entry", default=SALT_ENTRY_FUNCTION,
                        help="entry function/module rooting the closure "
                             f"(default {SALT_ENTRY_FUNCTION})")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report")
    parser.add_argument("--verbose", action="store_true",
                        help="list every module fingerprint folded in")
    args = parser.parse_args(argv)

    try:
        report = derived_salt_report(args.package, entry=args.entry)
    except AnalysisError as exc:
        print(f"repro-audit fingerprint: {exc}", file=sys.stderr)
        return 2

    if args.json:
        import json
        print(json.dumps({
            "salt": report.salt,
            "entry": report.entry,
            "modules": report.fingerprints,
            "modules_in_project": report.modules_in_project,
        }, indent=2, sort_keys=True))
        return 0
    print(f"salt: {report.salt}")
    print(f"entry: {report.entry}")
    print(f"modules: {len(report.fingerprints)} of "
          f"{report.modules_in_project} fingerprinted")
    if args.verbose:
        for name, fingerprint in report.fingerprints.items():
            print(f"  {fingerprint[:16]}  {name}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point shared by the console script and ``python -m``."""
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "fingerprint":
        return _main_fingerprint(arguments[1:])

    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="AST lint for repro's determinism/unit-safety invariants.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to audit "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text",
                        help="report format (default text)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (default all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(arguments)

    all_known: List[Union[Rule, ProjectRule]] = []
    all_known.extend(all_rules())
    all_known.extend(all_project_rules())
    if args.list_rules:
        print(render_rule_list(all_known))
        return 0

    try:
        rules, project_rules = _select_rules(args.select)
        findings, files_checked = audit_paths(
            args.paths, rules=rules, project_rules=project_rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-audit: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings, files_checked=files_checked))
    elif args.format == "github":
        print(render_github(findings, files_checked=files_checked))
    else:
        print(render_text(findings, files_checked=files_checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
