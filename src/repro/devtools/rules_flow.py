"""Whole-program flow rules: FLOW001/FLOW002 (RNG provenance) and UNIT003.

The per-file determinism rules (:mod:`repro.devtools.rules_determinism`)
flag entropy calls wherever they appear; these rules add the missing
*reachability* dimension: entropy in ``repro.netdyn.live`` is fine (it
measures a real network), the same call reachable from the simulation
kernel or the campaign cache worker silently poisons cached, supposedly
seed-deterministic results.  Each finding's message carries the call-graph
provenance chain that makes the code reachable, so a violation is
actionable without re-running the analysis by hand.

``UNIT003`` extends the per-file unit discipline (UNIT001/UNIT002) across
function boundaries: a value converted *out* of SI units for display
(``seconds_to_ms(...)``) must not flow back into computation code that,
per DESIGN.md, assumes SI everywhere.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.callgraph import CallGraph, kernel_reachable
from repro.devtools.core import (
    Finding,
    ProjectRule,
    register_project,
)
from repro.devtools.imports import attribute_chain, resolve_call_path
from repro.devtools.symbols import Project

#: Entry points whose transitive callees must stay seed-deterministic:
#: the campaign cache worker and the simulation kernel's main loop.
KERNEL_ROOTS: Tuple[str, ...] = (
    "repro.experiments.campaign._run_cell",
    "repro.sim.kernel.Simulator.run",
)

#: Wall-clock and entropy call targets banned in kernel-reachable code.
#: Wider than the per-file DET001 set: ``time.monotonic`` and
#: ``time.perf_counter`` are legitimate for live-network measurement but
#: have no business influencing a simulated result.
_ENTROPY_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Module prefixes whose every call target is unseeded/global RNG state.
_ENTROPY_PREFIXES = ("random.", "numpy.random.", "secrets.")


def _provenance(chain: List[str]) -> str:
    """Render a root-to-unit call chain for a finding message."""
    return " -> ".join(chain)


@register_project
class KernelEntropyFlowRule(ProjectRule):
    """FLOW001: no unseeded entropy or wall clock reachable from the kernel."""

    rule_id = "FLOW001"
    summary = ("entropy/wall-clock calls reachable from the simulation "
               "kernel or campaign worker must flow through seeded "
               "RandomStreams or be hoisted out of the simulated path")
    # RandomStreams is the one sanctioned numpy.random client.
    exempt_suffixes = ("repro/sim/random.py",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        result = kernel_reachable(project, KERNEL_ROOTS)
        if result is None:
            return
        graph, reach = result
        for unit_name in reach.units():
            unit = graph.units[unit_name]
            module = project.modules[unit.module]
            if not self.applies_to(module.path):
                continue
            for node in unit.walk():
                if not isinstance(node, ast.Call):
                    continue
                chain = attribute_chain(node.func)
                if chain is None or chain[0] not in module.imports.bindings:
                    continue
                path = resolve_call_path(node.func, module.imports)
                if path is None:
                    continue
                if path in _ENTROPY_CALLS \
                        or path.startswith(_ENTROPY_PREFIXES):
                    yield module.context.finding(
                        self, node,
                        f"`{path}` is reachable from the simulation kernel "
                        f"(via {_provenance(reach.chain(unit_name))}); "
                        f"results must be a pure function of the seed — "
                        f"draw from `sim.streams.get(name)` or move the "
                        f"call off the simulated path")


@register_project
class KernelOrderHazardRule(ProjectRule):
    """FLOW002: no namespace/environment order hazards near the kernel."""

    rule_id = "FLOW002"
    summary = ("globals()/vars() and os.environ reads reachable from the "
               "kernel make results depend on interpreter namespace or "
               "host environment instead of the experiment spec")

    def check_project(self, project: Project) -> Iterator[Finding]:
        result = kernel_reachable(project, KERNEL_ROOTS)
        if result is None:
            return
        graph, reach = result
        seen: Set[Tuple[str, int, int]] = set()
        for unit_name in reach.units():
            unit = graph.units[unit_name]
            module = project.modules[unit.module]
            if not self.applies_to(module.path):
                continue
            via = None
            for node in unit.walk():
                finding = None
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in ("globals", "vars", "locals")):
                    if via is None:
                        via = _provenance(reach.chain(unit_name))
                    finding = module.context.finding(
                        self, node,
                        f"`{node.func.id}()` in kernel-reachable code "
                        f"(via {via}) couples results to interpreter "
                        f"namespace contents; pass state explicitly")
                elif isinstance(node, ast.Attribute):
                    chain = attribute_chain(node)
                    if chain is None \
                            or chain[0] not in module.imports.bindings:
                        continue
                    root = module.imports.bindings[chain[0]]
                    path = ".".join([root] + chain[1:])
                    if path == "os.environ" \
                            or path.startswith("os.environ."):
                        if via is None:
                            via = _provenance(reach.chain(unit_name))
                        finding = module.context.finding(
                            self, node,
                            f"`os.environ` read in kernel-reachable code "
                            f"(via {via}) makes cached cells depend on the "
                            f"host environment; plumb configuration "
                            f"through the experiment spec instead")
                if finding is None:
                    continue
                key = (finding.path, finding.line, finding.col)
                if key in seen:
                    continue
                seen.add(key)
                yield finding


#: OUT-converters: calling one tags the value with a display unit.
_OUT_TAGS = {
    "repro.units.seconds_to_ms": "ms",
    "repro.units.seconds_to_us": "us",
    "repro.units.bps_to_kbps": "kb/s",
    "repro.units.bps_to_mbps": "Mb/s",
    "repro.units.bits_to_bytes": "bytes",
}

#: IN-converters: each accepts exactly one display unit and yields SI.
_IN_ACCEPTS = {
    "repro.units.ms": "ms",
    "repro.units.us": "us",
    "repro.units.kbps": "kb/s",
    "repro.units.mbps": "Mb/s",
    "repro.units.bytes_to_bits": "bytes",
}

#: Module prefixes that are display/tooling boundaries where non-SI
#: values are expected (axis labels, CLI tables, analyzer internals).
_DISPLAY_PREFIXES = ("repro.plotting", "repro.cli", "repro.devtools")


def _is_display_module(name: str) -> bool:
    return any(name == prefix or name.startswith(prefix + ".")
               for prefix in _DISPLAY_PREFIXES)


@register_project
class InterproceduralUnitsRule(ProjectRule):
    """UNIT003: display-unit values must not cross into computation code."""

    rule_id = "UNIT003"
    summary = ("a value converted out of SI units (seconds_to_ms, "
               "bps_to_kbps, ...) may only flow to display code or a "
               "matching inverse converter, never into computation that "
               "assumes SI")

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = CallGraph(project)
        tags = self._return_tags(project, graph)
        for unit_name in sorted(graph.units):
            unit = graph.units[unit_name]
            if _is_display_module(unit.module):
                continue
            module = project.modules[unit.module]
            if not self.applies_to(module.path):
                continue
            for node in unit.walk():
                if not isinstance(node, ast.Call):
                    continue
                callee = graph.resolve_call(node.func, unit.module)
                if callee is None or callee not in project.functions:
                    continue
                callee_module = project.functions[callee].module
                if _is_display_module(callee_module):
                    continue
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    if not isinstance(arg, ast.Call):
                        continue
                    source = graph.resolve_call(arg.func, unit.module)
                    tag = tags.get(source or "")
                    if tag is None:
                        continue
                    if _IN_ACCEPTS.get(callee) == tag:
                        continue  # matching inverse converter: back to SI
                    yield module.context.finding(
                        self, arg,
                        f"value in {tag} (from `{source}`) is passed to "
                        f"`{callee}`, which assumes SI units per "
                        f"DESIGN.md; convert at the display boundary or "
                        f"pass the SI value")

    def _return_tags(self, project: Project,
                     graph: CallGraph) -> Dict[str, str]:
        """Display-unit tag of each function's return value, to fixpoint.

        Seeded with the ``repro.units`` OUT-converters; a function that
        returns a call to a tagged function inherits its tag, so wrappers
        like ``def delay_ms(r): return seconds_to_ms(r.delay)`` propagate.
        """
        tags: Dict[str, str] = dict(_OUT_TAGS)
        changed = True
        while changed:
            changed = False
            for qualname, info in project.functions.items():
                if qualname in tags:
                    continue
                tag = self._returned_tag(info.node, info.module, graph, tags)
                if tag is not None:
                    tags[qualname] = tag
                    changed = True
        return tags

    @staticmethod
    def _returned_tag(node: ast.AST, module: str, graph: CallGraph,
                      tags: Dict[str, str]) -> Optional[str]:
        for child in ast.walk(node):
            if not isinstance(child, ast.Return) or child.value is None:
                continue
            if not isinstance(child.value, ast.Call):
                continue
            target = graph.resolve_call(child.value.func, module)
            if target is not None and target in tags:
                return tags[target]
        return None
