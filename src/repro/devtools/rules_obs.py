"""Observability rule: OBS001 (no ``print`` in library code).

Library modules must report through return values, the metrics registry, or
the tracers (:mod:`repro.obs`) — never by writing to stdout, which corrupts
machine-readable CLI output and is invisible to campaign manifests.  The
only sanctioned print sites are the CLI front-ends (``repro/cli.py``, the
audit tool's reporter) and the ASCII plotting package, whose entire job is
terminal output.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.devtools.core import FileContext, Finding, Rule, register


@register
class NoPrintRule(Rule):
    """OBS001: ``print()`` calls are banned outside the CLI/plotting."""

    rule_id = "OBS001"
    summary = ("print() is banned in library code; use return values, "
               "repro.obs metrics, or tracers (CLI and plotting exempt)")
    exempt_suffixes = ("repro/cli.py", "repro/devtools/audit.py")

    def applies_to(self, path: str) -> bool:
        posix = PurePath(path).as_posix()
        if "/plotting/" in posix or posix.endswith("/plotting"):
            return False
        return super().applies_to(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield ctx.finding(
                    self, node,
                    "print() in library code; return data or register an "
                    "observability instrument instead")
