"""Observability rules: OBS001 (no ``print``), OBS002 (kernel telemetry).

Library modules must report through return values, the metrics registry, or
the tracers (:mod:`repro.obs`) — never by writing to stdout, which corrupts
machine-readable CLI output and is invisible to campaign manifests.  The
only sanctioned print sites are the CLI front-ends (``repro/cli.py``, the
audit tool's reporter) and the ASCII plotting package, whose entire job is
terminal output.

``OBS002`` guards the other direction of the telemetry boundary: the
campaign-level telemetry (:mod:`repro.obs.spans`,
:mod:`repro.obs.progress`, :mod:`repro.obs.bench`) instruments the code
*around* the simulation — ``_run_cell`` emits spans, ``run_campaign``
drives progress — but the simulation kernel itself must never see it.
Code on the ``Simulator.run`` call graph importing a telemetry module
would let wall-clock observation creep into the simulated path, the exact
coupling the zero-perturbation invariant (DESIGN.md) forbids.  Unlike
FLOW001 this rule bans the *import*, not just calls: a telemetry module
in scope on the hot path is one refactor away from being consulted.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, Iterator, List, Tuple

from repro.devtools.callgraph import CallGraph
from repro.devtools.core import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    register,
    register_project,
)
from repro.devtools.symbols import Project


@register
class NoPrintRule(Rule):
    """OBS001: ``print()`` calls are banned outside the CLI/plotting."""

    rule_id = "OBS001"
    summary = ("print() is banned in library code; use return values, "
               "repro.obs metrics, or tracers (CLI and plotting exempt)")
    exempt_suffixes = ("repro/cli.py", "repro/devtools/audit.py")

    def applies_to(self, path: str) -> bool:
        posix = PurePath(path).as_posix()
        if "/plotting/" in posix or posix.endswith("/plotting"):
            return False
        return super().applies_to(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield ctx.finding(
                    self, node,
                    "print() in library code; return data or register an "
                    "observability instrument instead")


#: The simulation kernel's entry point.  Narrower than FLOW001's
#: KERNEL_ROOTS on purpose: ``_run_cell`` legitimately *emits* spans
#: around the simulation; only the simulation itself is off-limits.
SIMULATOR_ROOTS: Tuple[str, ...] = ("repro.sim.kernel.Simulator.run",)

#: Module subtrees banned on the simulator call graph: telemetry, plus
#: orchestration plumbing (the warm-pool lease/shared-memory transport) —
#: the kernel computes results, it never dispatches or ships them.
TELEMETRY_MODULES: Tuple[str, ...] = (
    "repro.obs.spans",
    "repro.obs.progress",
    "repro.obs.bench",
    "repro.experiments.pool",
)


def _is_telemetry(module_name: str) -> bool:
    return any(module_name == banned
               or module_name.startswith(banned + ".")
               for banned in TELEMETRY_MODULES)


def _absolute_module(node: ast.ImportFrom, importer: str) -> str:
    """Absolute module path of a (possibly relative) ``from`` import."""
    if not node.level:
        return node.module or ""
    parts = importer.split(".")
    base = parts[:len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _imported_modules(node: ast.AST, importer: str) -> List[str]:
    """Module names an import statement brings into scope.

    For ``from pkg import name`` both ``pkg`` and ``pkg.name`` are
    candidates — ``name`` may be a submodule (``from repro.obs import
    spans``), which only the caller's module index can tell apart.
    """
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        base = _absolute_module(node, importer)
        return [base] + [f"{base}.{alias.name}" for alias in node.names]
    return []


@register_project
class KernelTelemetryImportRule(ProjectRule):
    """OBS002: telemetry modules must stay off the simulator call graph."""

    rule_id = "OBS002"
    summary = ("repro.obs.spans/progress/bench must not be imported by "
               "code on the Simulator.run call graph; telemetry wraps "
               "the simulation, it never runs inside it")

    def check_project(self, project: Project) -> Iterator[Finding]:
        # The root's *import closure* over-approximates wildly (package
        # __init__ re-exports pull in the whole tree), so unlike FLOW001
        # this walks the unseeded call graph: only modules whose code the
        # kernel actually executes are checked.
        graph = CallGraph(project)
        present = [root for root in SIMULATOR_ROOTS if root in graph.units]
        if not present:
            return
        reach = graph.reachable_from(present, seed_import_closure=False)
        first_unit: Dict[str, str] = {}
        for unit_name in reach.units():
            module = graph.units[unit_name].module
            first_unit.setdefault(module, unit_name)
        for module_name in sorted(first_unit):
            module = project.modules[module_name]
            if _is_telemetry(module_name):
                continue  # telemetry importing telemetry is its business
            if not self.applies_to(module.path):
                continue
            via = " -> ".join(reach.chain(first_unit[module_name]))
            for node in ast.walk(module.context.tree):
                for target in _imported_modules(node, module_name):
                    if not _is_telemetry(target) \
                            or target not in project.modules:
                        continue
                    yield module.context.finding(
                        self, node,
                        f"`{target}` imported in `{module_name}`, whose "
                        f"code runs on the simulation kernel's call graph "
                        f"(via {via}); telemetry must instrument the "
                        f"campaign around the simulation, never the "
                        f"kernel itself")
                    break  # one finding per import statement
