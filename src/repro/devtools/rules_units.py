"""Unit-safety rules: UNIT001 (magic conversion literals), UNIT002 (suffixes).

The library is SI-internal (seconds, bits, bits/s).  Conversions belong in
:mod:`repro.units`; a hand-written ``* 1e-3`` is a silent factor-of-1000 bug
waiting to happen, and a parameter named ``delay_ms`` reintroduces a second
unit system into the internal API.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple, Union

from repro.devtools.core import FileContext, Finding, Rule, register

#: (value, op) -> suggested repro.units helper.  ``op`` is "*" or "/".
_CONVERSION_HINTS = {
    (1e-3, "*"): "ms(x) [ms -> s]",
    (1e-3, "/"): "seconds_to_ms(x) [s -> ms]",
    (1e3, "*"): "seconds_to_ms(x) [s -> ms] or kbps(x) [kb/s -> b/s]",
    (1e3, "/"): "ms(x) [ms -> s] or bps_to_kbps(x) [b/s -> kb/s]",
    (1e6, "*"): "seconds_to_us(x) [s -> us] or mbps(x) [Mb/s -> b/s]",
    (1e6, "/"): "us(x) [us -> s] or bps_to_mbps(x) [b/s -> Mb/s]",
    (8, "*"): "bytes_to_bits(x)",
    (8, "/"): "bits_to_bytes(x)",
}

#: Identifier suffixes that smuggle non-SI units into the internal API.
_BANNED_SUFFIXES = ("_ms", "_msec", "_us", "_usec", "_kbps", "_mbps", "_gbps")


def _literal_value(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    return None


def _match_conversion(node: ast.BinOp) -> Optional[Tuple[float, str]]:
    """Return ``(value, op)`` if ``node`` looks like a unit conversion."""
    if isinstance(node.op, ast.Mult):
        op = "*"
        candidates = (_literal_value(node.left), _literal_value(node.right))
    elif isinstance(node.op, ast.Div):
        op = "/"
        candidates = (_literal_value(node.right),)
    else:
        return None
    for value in candidates:
        if value is not None and (value, op) in _CONVERSION_HINTS:
            return value, op
    return None


@register
class MagicConversionLiteralRule(Rule):
    """UNIT001: unit-conversion literals outside units.py."""

    rule_id = "UNIT001"
    summary = ("magic conversion factors (1e-3, 1e3, 1e6, * 8, / 8) must go "
               "through repro.units helpers")
    # units.py is where the factors are *defined*.
    exempt_suffixes = ("repro/units.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            match = _match_conversion(node)
            if match is None:
                continue
            value, op = match
            hint = _CONVERSION_HINTS[(value, op)]
            shown = int(value) if value == int(value) and value >= 1 else value
            yield ctx.finding(
                self, node,
                f"magic unit factor `{op} {shown:g}`; use repro.units."
                f"{hint} so the conversion is named and appears once")


def _suffix_of(name: str) -> Optional[str]:
    for suffix in _BANNED_SUFFIXES:
        if name.endswith(suffix):
            return suffix
    return None


@register
class UnitSuffixedNameRule(Rule):
    """UNIT002: no `_ms`/`_kbps`-style parameters or attributes."""

    rule_id = "UNIT002"
    summary = ("parameters/attributes suffixed _ms/_us/_kbps/_mbps are "
               "banned; the internal API is SI-only (seconds, bits, bits/s)")
    # units.py defines the converters themselves (seconds_to_ms, ...).
    exempt_suffixes = ("repro/units.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class_body(ctx, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_self_attributes(ctx, node)

    def _check_signature(
            self, ctx: FileContext,
            node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> Iterator[Finding]:
        arguments = node.args
        every = (list(arguments.posonlyargs) + list(arguments.args)
                 + list(arguments.kwonlyargs))
        if arguments.vararg is not None:
            every.append(arguments.vararg)
        if arguments.kwarg is not None:
            every.append(arguments.kwarg)
        for arg in every:
            suffix = _suffix_of(arg.arg)
            if suffix is not None:
                yield ctx.finding(
                    self, arg,
                    f"parameter `{arg.arg}` carries non-SI unit suffix "
                    f"`{suffix}`; accept SI (seconds / bits/s) and convert "
                    f"at the boundary with repro.units")

    def _check_class_body(self, ctx: FileContext,
                          node: ast.ClassDef) -> Iterator[Finding]:
        for stmt in node.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            elif isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            for target in targets:
                if isinstance(target, ast.Name):
                    suffix = _suffix_of(target.id)
                    if suffix is not None:
                        yield ctx.finding(
                            self, target,
                            f"class attribute `{target.id}` carries non-SI "
                            f"unit suffix `{suffix}`; store SI and convert "
                            f"for display only")

    def _check_self_attributes(
            self, ctx: FileContext,
            node: Union[ast.Assign, ast.AnnAssign]) -> Iterator[Finding]:
        targets: List[ast.expr] = [node.target] \
            if isinstance(node, ast.AnnAssign) else list(node.targets)
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in ("self", "cls")):
                suffix = _suffix_of(target.attr)
                if suffix is not None:
                    yield ctx.finding(
                        self, target,
                        f"attribute `{target.value.id}.{target.attr}` carries "
                        f"non-SI unit suffix `{suffix}`; store SI and convert "
                        f"for display only")
