"""Render audit findings as text, JSON, or GitHub workflow annotations."""

from __future__ import annotations

import json
from typing import List, Sequence, Union

from repro.devtools.core import Finding, ProjectRule, Rule


def render_text(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """Classic compiler-style report, one ``path:line:col`` line per finding."""
    lines: List[str] = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    file_noun = "file" if files_checked == 1 else "files"
    suffix = f" across {files_checked} {file_noun}" if files_checked else ""
    lines.append(f"{len(findings)} {noun}{suffix}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """JSON document: ``{"findings": [...], "count": N, "files_checked": M}``.

    The CI workflow parses this, so the key names are a stable contract.
    """
    payload = {
        "findings": [finding.as_dict() for finding in findings],
        "count": len(findings),
        "files_checked": files_checked,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_github(value: str, in_property: bool = False) -> str:
    """Escape data for GitHub workflow commands.

    Messages escape ``%``/CR/LF; property values (file, title) additionally
    escape ``:`` and ``,`` which delimit the property list.
    """
    value = (value.replace("%", "%25")
             .replace("\r", "%0D")
             .replace("\n", "%0A"))
    if in_property:
        value = value.replace(":", "%3A").replace(",", "%2C")
    return value


def render_github(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """GitHub Actions ``::error`` annotations, one per finding.

    Columns are 1-based in the annotation syntax (findings store 0-based
    AST column offsets).  A plain summary line follows the annotations so
    the raw log stays readable.
    """
    lines = [
        f"::error file={_escape_github(f.path, in_property=True)},"
        f"line={f.line},col={f.col + 1},"
        f"title={_escape_github(f.rule, in_property=True)}"
        f"::{_escape_github(f.message)}"
        for f in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    file_noun = "file" if files_checked == 1 else "files"
    suffix = f" across {files_checked} {file_noun}" if files_checked else ""
    lines.append(f"{len(findings)} {noun}{suffix}")
    return "\n".join(lines)


def render_rule_list(rules: Sequence[Union[Rule, ProjectRule]]) -> str:
    """One-line-per-rule listing for ``repro-audit --list-rules``."""
    width = max((len(rule.rule_id) for rule in rules), default=0)
    return "\n".join(f"{rule.rule_id:<{width}}  {rule.summary}"
                     for rule in rules)
