"""Render audit findings as human text or machine-readable JSON."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.devtools.core import Finding, Rule


def render_text(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """Classic compiler-style report, one ``path:line:col`` line per finding."""
    lines: List[str] = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    file_noun = "file" if files_checked == 1 else "files"
    suffix = f" across {files_checked} {file_noun}" if files_checked else ""
    lines.append(f"{len(findings)} {noun}{suffix}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """JSON document: ``{"findings": [...], "count": N, "files_checked": M}``.

    The CI workflow parses this, so the key names are a stable contract.
    """
    payload = {
        "findings": [finding.as_dict() for finding in findings],
        "count": len(findings),
        "files_checked": files_checked,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list(rules: Sequence[Rule]) -> str:
    """One-line-per-rule listing for ``repro-audit --list-rules``."""
    width = max((len(rule.rule_id) for rule in rules), default=0)
    return "\n".join(f"{rule.rule_id:<{width}}  {rule.summary}"
                     for rule in rules)
