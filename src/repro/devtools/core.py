"""Rule framework for the :mod:`repro.devtools` static analyzer.

A :class:`Rule` inspects one parsed module (:class:`FileContext`) and yields
:class:`Finding` objects.  Rules register themselves with :func:`register`
and are looked up by id (``DET001``, ``UNIT001``, ...).  Per-line
suppressions use the comment syntax::

    total = delta * 1e3  # repro: noqa[UNIT001]
    risky()              # repro: noqa            (suppresses every rule)

Multiple ids separate with commas: ``# repro: noqa[UNIT001,DET001]``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import (
    TYPE_CHECKING,
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Type,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.devtools.symbols import Project

#: Matches a suppression comment; group 1 is the optional rule-id list.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Sentinel stored in the suppression map meaning "every rule".
_ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule.

    Sorts by location so reports are stable regardless of rule order.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """Render as a classic ``path:line:col: RULE message`` diagnostic."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        """JSON-serializable form (consumed by CI tooling)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to inspect one module."""

    path: str
    source: str
    tree: ast.AST
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "FileContext":
        """Parse ``source`` and precompute its suppression map.

        Raises
        ------
        SyntaxError
            If the module does not parse; callers turn this into a
            ``PARSE001`` finding.
        """
        tree = ast.parse(source, filename=path)
        suppressions = expand_statement_suppressions(
            tree, parse_suppressions(source))
        return cls(path=path, source=source, tree=tree,
                   suppressions=suppressions)

    def finding(self, rule: Union["Rule", "ProjectRule"], node: ast.AST,
                message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(rule=rule.rule_id, path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)

    def is_suppressed(self, finding: Finding) -> bool:
        """True if the finding's line carries a matching noqa comment."""
        ids = self.suppressions.get(finding.line)
        if ids is None:
            return False
        return _ALL_RULES in ids or finding.rule in ids


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line numbers to the set of rule ids suppressed on that line."""
    suppressed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        ids = match.group(1)
        if ids is None:
            suppressed[lineno] = {_ALL_RULES}
        else:
            suppressed[lineno] = {part.strip() for part in ids.split(",")
                                  if part.strip()}
    return suppressed


#: Statement types whose physical extent a trailing noqa comment covers.
#: Compound statements (if/for/def/class/...) are excluded: a noqa inside
#: their body must not bleed onto the header line.
_SIMPLE_STATEMENTS = (
    ast.Expr, ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Return,
    ast.Raise, ast.Assert, ast.Delete, ast.Import, ast.ImportFrom,
    ast.Global, ast.Nonlocal,
)


def expand_statement_suppressions(
        tree: ast.AST,
        suppressed: Dict[int, Set[str]]) -> Dict[int, Set[str]]:
    """Spread suppressions across multi-line simple statements.

    A call or expression wrapped over several lines reports its findings
    at the statement's *first* line, while the natural place for the noqa
    comment is the *closing* line.  For every simple (non-compound)
    statement, a suppression on any of its physical lines therefore
    covers every line of the statement — in particular the first.
    """
    if not suppressed:
        return suppressed
    expanded: Dict[int, Set[str]] = {line: set(ids)
                                     for line, ids in suppressed.items()}
    for node in ast.walk(tree):
        if not isinstance(node, _SIMPLE_STATEMENTS):
            continue
        first = node.lineno
        last = getattr(node, "end_lineno", None)
        if last is None or last <= first:
            continue
        ids: Set[str] = set()
        for line in range(first, last + 1):
            ids |= suppressed.get(line, set())
        if not ids:
            continue
        for line in range(first, last + 1):
            expanded.setdefault(line, set()).update(ids)
    return expanded


class Rule:
    """Base class for audit rules.

    Subclasses set :attr:`rule_id` and :attr:`summary`, optionally
    :attr:`exempt_suffixes` (posix path suffixes the rule never applies to,
    e.g. ``repro/units.py`` for the magic-literal rule), and implement
    :meth:`check`.
    """

    rule_id: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    exempt_suffixes: ClassVar[Sequence[str]] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (honors exemptions)."""
        posix = PurePath(path).as_posix()
        return not any(posix.endswith(suffix) for suffix in self.exempt_suffixes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-program rules.

    Unlike :class:`Rule`, a project rule sees the entire indexed
    :class:`~repro.devtools.symbols.Project` at once — symbol table,
    import graph, call graph — and can reason across function and module
    boundaries.  Findings still anchor to a file/line, so per-line
    ``# repro: noqa[...]`` suppressions apply exactly as for file rules.
    """

    rule_id: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    exempt_suffixes: ClassVar[Sequence[str]] = ()

    def applies_to(self, path: str) -> bool:
        """Whether findings may be reported against ``path``."""
        posix = PurePath(path).as_posix()
        return not any(posix.endswith(suffix) for suffix in self.exempt_suffixes)

    def check_project(self, project: "Project") -> Iterator[Finding]:
        """Yield findings for the whole project."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}
_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def _guard_rule_id(rule_cls: Union[Type[Rule], Type[ProjectRule]]) -> None:
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY or rule_cls.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    _guard_rule_id(rule_cls)
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def register_project(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a whole-program rule to the registry."""
    _guard_rule_id(rule_cls)
    _PROJECT_REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def _load_builtin_rules() -> None:
    """Import the built-in rule modules so they self-register."""
    from repro.devtools import (  # noqa: F401  (imported for side effects)
        rules_determinism,
        rules_errors,
        rules_flow,
        rules_obs,
        rules_perf,
        rules_sim,
        rules_units,
    )


def all_rules() -> List[Rule]:
    """Instantiate every registered per-file rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def all_project_rules() -> List[ProjectRule]:
    """Instantiate every registered whole-program rule, sorted by id."""
    _load_builtin_rules()
    return [_PROJECT_REGISTRY[rule_id]()
            for rule_id in sorted(_PROJECT_REGISTRY)]


def get_rule(rule_id: str) -> Union[Rule, ProjectRule]:
    """Instantiate the registered rule ``rule_id`` (file or project).

    Raises
    ------
    KeyError
        If no rule with that id exists.
    """
    _load_builtin_rules()
    if rule_id in _PROJECT_REGISTRY:
        return _PROJECT_REGISTRY[rule_id]()
    return _REGISTRY[rule_id]()


def audit_source(source: str, path: str = "<string>",
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run ``rules`` (default: all) over ``source`` and return findings.

    Findings on lines with a matching ``# repro: noqa[...]`` comment are
    dropped.  This is the single entry point both the CLI and the unit tests
    go through.
    """
    ctx = FileContext.from_source(source, path=path)
    active = list(rules) if rules is not None else all_rules()
    findings = [finding
                for rule in active if rule.applies_to(path)
                for finding in rule.check(ctx)
                if not ctx.is_suppressed(finding)]
    findings.sort(key=Finding.sort_key)
    return findings
