"""Static-analysis tooling that guards the library's core invariants.

The reproduction's results are only trustworthy if two properties hold
everywhere in ``src/repro``:

* **Determinism** — runs are bit-for-bit reproducible from a seed, so all
  randomness must route through :class:`repro.sim.random.RandomStreams` and
  nothing may read the wall clock or iterate over unordered sets in
  result-affecting code.
* **Unit safety** — every quantity is SI internally (seconds, bits, bits/s),
  with conversions expressed through :mod:`repro.units` helpers rather than
  hand-written ``* 1e-3`` style literals.

Two layers enforce them.  Per-file rules (:class:`Rule`) lint one module at
a time.  Whole-program rules (:class:`ProjectRule`) see the full project —
symbol table (:mod:`repro.devtools.symbols`), call graph
(:mod:`repro.devtools.callgraph`) — and check *reachability*: entropy is
fine in live-measurement code, but not reachable from the simulation
kernel.  The same machinery derives the campaign cell-cache salt from
normalized-AST fingerprints of reachable code
(:mod:`repro.devtools.fingerprint`), replacing the old hand-bumped
constant.

Run the linter as ``repro-audit`` or ``python -m repro.devtools.audit``;
inspect the derived salt with ``repro-audit fingerprint``; suppress a
finding on one line with ``# repro: noqa[RULE]``.
"""

from repro.devtools.core import (
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    audit_source,
    get_rule,
    register,
    register_project,
)

__all__ = [
    "FileContext",
    "Finding",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "audit_source",
    "get_rule",
    "register",
    "register_project",
]
