"""Static-analysis tooling that guards the library's core invariants.

The reproduction's results are only trustworthy if two properties hold
everywhere in ``src/repro``:

* **Determinism** — runs are bit-for-bit reproducible from a seed, so all
  randomness must route through :class:`repro.sim.random.RandomStreams` and
  nothing may read the wall clock or iterate over unordered sets in
  result-affecting code.
* **Unit safety** — every quantity is SI internally (seconds, bits, bits/s),
  with conversions expressed through :mod:`repro.units` helpers rather than
  hand-written ``* 1e-3`` style literals.

:mod:`repro.devtools.audit` is an AST-based linter that enforces these (plus
simulator-encapsulation and error-handling rules) over the source tree.  Run
it as ``repro-audit`` or ``python -m repro.devtools.audit``; suppress a
finding on one line with ``# repro: noqa[RULE]``.
"""

from repro.devtools.core import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    audit_source,
    get_rule,
    register,
)

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "audit_source",
    "get_rule",
    "register",
]
