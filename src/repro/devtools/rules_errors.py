"""Error-handling rule: EXC001.

Bare ``except:`` (and ``except Exception: pass``) swallow
:class:`KeyboardInterrupt`/analysis bugs indiscriminately and hide failed
invariants.  Library code catches the specific :mod:`repro.errors` classes it
can actually handle; anything else should propagate.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.core import FileContext, Finding, Rule, register

_BROAD_TYPES = ("Exception", "BaseException")


def _is_broad_type(expr: ast.AST) -> bool:
    """True for ``Exception``/``BaseException`` (bare or via a tuple)."""
    if isinstance(expr, ast.Name):
        return expr.id in _BROAD_TYPES
    if isinstance(expr, ast.Tuple):
        return any(_is_broad_type(element) for element in expr.elts)
    return False


def _swallows(body: List[ast.stmt]) -> bool:
    """True if the handler body only discards the error (pass/.../continue)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


@register
class BroadExceptRule(Rule):
    """EXC001: no bare except / silently-swallowed broad except."""

    rule_id = "EXC001"
    summary = ("bare `except:` and `except Exception: pass` are banned; "
               "catch the specific repro.errors class (or re-raise)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt; catch a repro.errors class instead")
            elif _is_broad_type(node.type) and _swallows(node.body):
                yield ctx.finding(
                    self, node,
                    "`except Exception` that silently discards the error "
                    "hides violated invariants; catch the specific "
                    "repro.errors class or handle/re-raise it")
