"""Project-wide symbol table for whole-program analysis.

The per-file rules see one module at a time; the flow rules
(:mod:`repro.devtools.rules_flow`) and the derived cache salt
(:mod:`repro.devtools.fingerprint`) need to reason about the program as a
whole: which dotted name is defined where, what a re-exported alias really
binds to, and which modules an entry point transitively imports.

:class:`Project` indexes a set of parsed modules (usually everything under
``src/repro``) into three tables:

* ``modules`` — dotted module name -> :class:`ModuleInfo` (AST, import map,
  statically imported module names);
* ``functions`` — fully-qualified function/method name
  (``repro.sim.kernel.Simulator.run``) -> :class:`FunctionInfo`;
* ``classes`` — fully-qualified class name -> :class:`ClassInfo` with its
  method table and resolved project base classes.

:meth:`Project.resolve` follows re-export chains (``repro.obs.KernelTracer``
-> ``repro.obs.tracer.KernelTracer``) until it lands on a definition, and
:meth:`Project.import_closure` computes the set of project modules that
executing an entry module imports — including ancestor package
``__init__`` modules, which Python runs first.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.devtools.core import FileContext
from repro.devtools.imports import ImportMap


def module_name_for_path(path: Union[str, Path]) -> Optional[str]:
    """Dotted module name of ``path``, derived from ``__init__.py`` ancestry.

    ``src/repro/sim/kernel.py`` -> ``"repro.sim.kernel"``;
    ``src/repro/sim/__init__.py`` -> ``"repro.sim"``.  ``None`` for a file
    that is not inside a package (no enclosing ``__init__.py``).
    """
    resolved = Path(path).resolve()
    if resolved.name == "__init__.py":
        parts: List[str] = []
    elif (resolved.parent / "__init__.py").exists():
        parts = [resolved.stem]
    else:
        return None
    current = resolved.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    if not parts:
        return None
    return ".".join(reversed(parts))


def _imported_module_names(tree: ast.AST, module_name: str,
                           is_package: bool) -> Set[str]:
    """Every module name statically imported anywhere in ``tree``.

    Conservative on purpose: function-local and ``TYPE_CHECKING`` imports
    are included (they over-approximate what can execute), and for
    ``from pkg import name`` both ``pkg`` and ``pkg.name`` are recorded —
    ``name`` may be a submodule; non-module names are filtered out later
    by intersecting with the project's module table.
    """
    names: Set[str] = set()
    parts = module_name.split(".")
    package_parts = parts if is_package else parts[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # Relative import: level 1 is the containing package,
                # each extra level walks one package up.
                prefix = package_parts[:len(package_parts)
                                       - (node.level - 1)]
                base = ".".join(prefix + ([node.module] if node.module
                                          else []))
            if base:
                names.add(base)
                for alias in node.names:
                    names.add(f"{base}.{alias.name}")
    return names


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    #: Qualified name of the enclosing class, None for module-level defs.
    class_qualname: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One class definition with its method table."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: method name -> function qualname (own methods only; see
    #: :meth:`Project.resolve_method` for inherited lookup).
    methods: Dict[str, str] = field(default_factory=dict)
    #: Base-class qualnames resolved to project classes (best effort).
    bases: List[str] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: str
    context: FileContext
    imports: ImportMap
    #: Module names this module statically imports (project and external).
    imported_modules: Set[str] = field(default_factory=set)


class Project:
    """Symbol table and import resolver over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_contexts(cls, contexts: Iterable[FileContext]) -> "Project":
        """Index already-parsed modules (files outside packages are skipped)."""
        project = cls()
        for ctx in contexts:
            name = module_name_for_path(ctx.path)
            if name is None or name in project.modules:
                continue
            is_package = Path(ctx.path).name == "__init__.py"
            info = ModuleInfo(
                name=name, path=ctx.path, context=ctx,
                imports=ImportMap.from_tree(ctx.tree),
                imported_modules=_imported_module_names(
                    ctx.tree, name, is_package))
            project.modules[name] = info
        for info in sorted(project.modules.values(), key=lambda m: m.name):
            project._index_module(info)
        project._resolve_bases()
        return project

    @classmethod
    def from_files(cls, files: Sequence[Union[str, Path]]) -> "Project":
        """Parse and index ``files``; unparseable files are skipped.

        Per-file rules report a parse failure as ``PARSE001`` already; the
        project analysis simply proceeds without the broken module.
        """
        contexts = []
        for path in files:
            path = Path(path)
            try:
                source = path.read_text(encoding="utf-8")
                contexts.append(FileContext.from_source(
                    source, path=path.as_posix()))
            except (OSError, SyntaxError):
                continue
        return cls.from_contexts(contexts)

    @classmethod
    def from_package(cls, package_dir: Union[str, Path]) -> "Project":
        """Index every ``.py`` file under a package directory."""
        package_dir = Path(package_dir)
        return cls.from_files(sorted(package_dir.rglob("*.py")))

    def _index_module(self, info: ModuleInfo) -> None:
        assert isinstance(info.context.tree, ast.Module)
        for stmt in info.context.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{info.name}.{stmt.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=info.name, node=stmt)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(info, stmt)

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        class_qualname = f"{info.name}.{node.name}"
        cls_info = ClassInfo(qualname=class_qualname, module=info.name,
                             node=node)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{class_qualname}.{stmt.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=info.name, node=stmt,
                    class_qualname=class_qualname)
                cls_info.methods[stmt.name] = qualname
        self.classes[class_qualname] = cls_info

    def _resolve_bases(self) -> None:
        for cls_info in self.classes.values():
            module = self.modules[cls_info.module]
            for base in cls_info.node.bases:
                parts = _dotted_parts(base)
                if parts is None:
                    continue
                root = module.imports.bindings.get(parts[0], None)
                if root is None:
                    # Unimported name: a class defined in the same module?
                    candidate = f"{cls_info.module}.{parts[0]}"
                    resolved = self.resolve(candidate) \
                        if len(parts) == 1 else None
                else:
                    resolved = self.resolve(".".join([root] + parts[1:]))
                if resolved is not None and resolved in self.classes:
                    cls_info.bases.append(resolved)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve(self, path: Optional[str]) -> Optional[str]:
        """Follow re-export chains until ``path`` names a definition.

        Returns the qualified name of a function or class in this project,
        or ``None`` when the path leaves the project (stdlib, numpy, a
        dynamic attribute, ...).  Handles aliasing through any number of
        ``from x import y as z`` hops and attribute suffixes on re-exports
        (``repro.sim.Simulator.run``).
        """
        seen: Set[str] = set()
        while path is not None and path not in seen:
            seen.add(path)
            if path in self.functions or path in self.classes:
                return path
            # Method access on a resolvable class: C.m -> the method.
            prefix, _, attr = path.rpartition(".")
            if prefix in self.classes and attr:
                method = self.resolve_method(prefix, attr)
                if method is not None:
                    return method
                return None
            path = self._follow_binding(path)
        return None

    def _follow_binding(self, path: str) -> Optional[str]:
        """One re-export hop: substitute the longest module prefix's alias."""
        parts = path.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:cut])
            module = self.modules.get(module_name)
            if module is None:
                continue
            binding = module.imports.bindings.get(parts[cut])
            if binding is None:
                return None
            return ".".join([binding] + parts[cut + 1:])
        return None

    def resolve_method(self, class_qualname: str,
                       method: str) -> Optional[str]:
        """Qualified name of ``method`` on a class or its project bases."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cls_info = self.classes.get(current)
            if cls_info is None:
                continue
            if method in cls_info.methods:
                return cls_info.methods[method]
            stack.extend(cls_info.bases)
        return None

    def class_and_ancestors(self, class_qualname: str) -> List[str]:
        """The class and every resolvable project base, nearest first."""
        ordered: List[str] = []
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in ordered or current not in self.classes:
                continue
            ordered.append(current)
            stack.extend(self.classes[current].bases)
        return ordered

    def _with_ancestor_packages(self, name: str) -> List[str]:
        """``name`` plus every enclosing package present in the project."""
        parts = name.split(".")
        candidates = [".".join(parts[:i]) for i in range(1, len(parts) + 1)]
        return [c for c in candidates if c in self.modules]

    def import_closure(self, entry_module: str,
                       exclude_prefixes: Sequence[str] = (),
                       ) -> List[str]:
        """Project modules transitively imported by ``entry_module``, sorted.

        Importing ``a.b.c`` executes ``a`` and ``a.b`` first, so ancestor
        package ``__init__`` modules are always part of the closure.  The
        result over-approximates runtime behaviour (conditional and
        function-local imports count), which is exactly what a cache salt
        wants: code that *could* run is code that could change results.
        ``exclude_prefixes`` drops module subtrees (e.g. the analyzer
        itself) from the walk entirely.
        """
        if entry_module not in self.modules:
            raise KeyError(f"module {entry_module!r} is not in the project")

        def excluded(name: str) -> bool:
            return any(name == prefix or name.startswith(prefix + ".")
                       for prefix in exclude_prefixes)

        closure: Set[str] = set()
        stack = [entry_module]
        while stack:
            name = stack.pop()
            for member in self._with_ancestor_packages(name):
                if member in closure or excluded(member):
                    continue
                closure.add(member)
                stack.extend(imported for imported
                             in self.modules[member].imported_modules
                             if imported not in closure)
        return sorted(closure)


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """Name/attribute chain as parts, None for anything more dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts
