"""Packet representation shared by the whole network substrate.

A packet records its *wire size* in bytes (payload plus protocol overhead);
links serialize packets at ``wire size / link rate``.  The paper's probe
packets carry a 32-byte payload but occupy 72 bytes on the wire (Bolot
computes ``b_n = mu * 35ms - 72 * 8`` bits), so the UDP/IP/link overhead
constant below is 40 bytes.

``Packet`` is a hand-written ``__slots__`` class: the forwarding path creates
one per datagram and touches its fields at every hop, so instance size and
attribute access dominate the substrate's per-packet cost (see DESIGN.md,
"Hot path").
"""

from __future__ import annotations

import itertools

from repro.units import BITS_PER_BYTE
from typing import Any, Optional

#: IPv4 header (20 B) + UDP header (8 B).
UDP_IP_HEADER_BYTES = 28

#: Extra link-level framing assumed by the paper's arithmetic (72 B wire size
#: for a 32 B payload probe): 20 IP + 8 UDP + 12 framing.
LINK_FRAMING_BYTES = 12

#: Total per-packet overhead for UDP datagrams, matching the paper's P = 72 B.
UDP_WIRE_OVERHEAD_BYTES = UDP_IP_HEADER_BYTES + LINK_FRAMING_BYTES

#: Default initial TTL, as in classic BSD stacks.
DEFAULT_TTL = 64

#: Packet kinds understood by nodes.
KIND_UDP = "udp"
KIND_ICMP_ECHO = "icmp_echo"
KIND_ICMP_ECHO_REPLY = "icmp_echo_reply"
KIND_ICMP_TIME_EXCEEDED = "icmp_time_exceeded"
KIND_ICMP_PORT_UNREACHABLE = "icmp_port_unreachable"

ICMP_KINDS = frozenset({
    KIND_ICMP_ECHO,
    KIND_ICMP_ECHO_REPLY,
    KIND_ICMP_TIME_EXCEEDED,
    KIND_ICMP_PORT_UNREACHABLE,
})

ICMP_ERROR_KINDS = frozenset({
    KIND_ICMP_TIME_EXCEEDED,
    KIND_ICMP_PORT_UNREACHABLE,
})

_uid_counter = itertools.count(1)


def next_packet_uid() -> int:
    """Return the next packet uid (diagnostics only).

    Uids restart from 1 whenever a :class:`~repro.sim.kernel.Simulator` is
    constructed (see :func:`reset_packet_uids`), so they are unique within a
    simulation, not across a whole process.
    """
    return next(_uid_counter)


def reset_packet_uids() -> None:
    """Restart the uid counter at 1.

    Called by ``Simulator.__init__`` so that the uids a cell's
    :class:`~repro.obs.lifecycle.PacketLifecycleTracer` records depend only
    on that cell's own packet sequence — two identical cells run
    back-to-back in one process emit identical lifecycle traces.
    """
    global _uid_counter
    _uid_counter = itertools.count(1)


class Packet:
    """A network packet.

    Attributes
    ----------
    src, dst:
        Node names of the original sender and the final destination.
    kind:
        One of the ``KIND_*`` constants; selects the local delivery path.
    size_bytes:
        Wire size, including all protocol overhead.
    ttl:
        Remaining hop budget; routers decrement it and emit ICMP
        time-exceeded when it reaches zero.
    src_port, dst_port:
        UDP ports (``None`` for non-UDP packets).
    payload:
        Arbitrary application object (bytes for NetDyn probes).
    created_at:
        Simulation time at which the packet was created by its sender.
    hops:
        Number of forwarding operations performed so far.
    context:
        For ICMP errors: information about the offending packet.
    record:
        When a list, every node the packet visits appends its name — the
        IP record-route option (how the paper obtained Table 1 via ping).
    uid:
        Per-simulation unique id (assigned from the uid counter when not
        given explicitly).
    """

    __slots__ = ("src", "dst", "kind", "size_bytes", "ttl", "src_port",
                 "dst_port", "payload", "created_at", "hops", "context",
                 "record", "uid")

    def __init__(self, src: str, dst: str, kind: str = KIND_UDP,
                 size_bytes: int = UDP_WIRE_OVERHEAD_BYTES,
                 ttl: int = DEFAULT_TTL,
                 src_port: Optional[int] = None,
                 dst_port: Optional[int] = None,
                 payload: Any = None, created_at: float = 0.0,
                 hops: int = 0, context: Any = None,
                 record: Optional[list] = None,
                 uid: Optional[int] = None) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size_bytes = size_bytes
        self.ttl = ttl
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload
        self.created_at = created_at
        self.hops = hops
        self.context = context
        self.record = record
        self.uid = next(_uid_counter) if uid is None else uid

    @property
    def size_bits(self) -> int:
        """Wire size in bits."""
        return self.size_bytes * BITS_PER_BYTE

    @property
    def is_icmp(self) -> bool:
        """True for all ICMP packet kinds."""
        return self.kind in ICMP_KINDS

    @property
    def is_icmp_error(self) -> bool:
        """True for ICMP error kinds (time exceeded, port unreachable)."""
        return self.kind in ICMP_ERROR_KINDS

    def __repr__(self) -> str:  # compact, log-friendly
        port = ""
        if self.kind == KIND_UDP:
            port = f" {self.src_port}->{self.dst_port}"
        return (f"<Packet #{self.uid} {self.kind} {self.src}->{self.dst}"
                f"{port} {self.size_bytes}B ttl={self.ttl}>")


def make_udp(src: str, dst: str, src_port: int, dst_port: int,
             payload: Any = None, payload_bytes: int = 0,
             created_at: float = 0.0, ttl: int = DEFAULT_TTL) -> Packet:
    """Build a UDP packet; wire size = payload + UDP/IP/framing overhead."""
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
    return Packet(src=src, dst=dst, kind=KIND_UDP,
                  size_bytes=payload_bytes + UDP_WIRE_OVERHEAD_BYTES,
                  ttl=ttl, src_port=src_port, dst_port=dst_port,
                  payload=payload, created_at=created_at)
