"""ICMP message construction.

Only the message types the paper's tooling needs are modeled: echo /
echo-reply (ping, and the grouped prober of Mukherjee [19]), time-exceeded
(traceroute), and port-unreachable (traceroute's terminal reply).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.packet import (
    KIND_ICMP_ECHO,
    KIND_ICMP_ECHO_REPLY,
    KIND_ICMP_PORT_UNREACHABLE,
    KIND_ICMP_TIME_EXCEEDED,
    Packet,
)

#: Wire size of an ICMP echo request/reply (classic ping default payload).
ECHO_SIZE_BYTES = 64

#: Wire size of an ICMP error message (IP header + 8 bytes of the original).
ERROR_SIZE_BYTES = 56


@dataclass(frozen=True)
class EchoContext:
    """Identifier/sequence pair carried by echo requests and replies."""

    ident: int
    seq: int


@dataclass(frozen=True)
class ErrorContext:
    """What an ICMP error reports about the packet that triggered it."""

    reporter: str
    original_uid: int
    original_src: str
    original_dst: str
    original_src_port: Optional[int]
    original_dst_port: Optional[int]


def make_echo(src: str, dst: str, ident: int, seq: int, created_at: float,
              size_bytes: int = ECHO_SIZE_BYTES, ttl: int = 64,
              record_route: bool = False) -> Packet:
    """Build an ICMP echo request.

    With ``record_route`` the packet carries the IP record-route option:
    every visited node appends its name, and the echo reply continues the
    same list — how the paper obtained the Table 1 route with ping.
    """
    return Packet(src=src, dst=dst, kind=KIND_ICMP_ECHO,
                  size_bytes=size_bytes, ttl=ttl,
                  payload=EchoContext(ident=ident, seq=seq),
                  created_at=created_at,
                  record=[] if record_route else None)


def make_echo_reply(echo: Packet, created_at: float) -> Packet:
    """Build the reply to ``echo`` (src/dst swapped, payload preserved).

    A record-route list is carried over so the reply keeps appending, as
    the real IP option does across the round trip.
    """
    return Packet(src=echo.dst, dst=echo.src, kind=KIND_ICMP_ECHO_REPLY,
                  size_bytes=echo.size_bytes, payload=echo.payload,
                  created_at=created_at, record=echo.record)


def make_error(kind: str, reporter: str, offending: Packet,
               created_at: float) -> Packet:
    """Build a time-exceeded or port-unreachable error about ``offending``."""
    if kind not in (KIND_ICMP_TIME_EXCEEDED, KIND_ICMP_PORT_UNREACHABLE):
        raise ValueError(f"not an ICMP error kind: {kind!r}")
    context = ErrorContext(
        reporter=reporter,
        original_uid=offending.uid,
        original_src=offending.src,
        original_dst=offending.dst,
        original_src_port=offending.src_port,
        original_dst_port=offending.dst_port,
    )
    return Packet(src=reporter, dst=offending.src, kind=kind,
                  size_bytes=ERROR_SIZE_BYTES, payload=context,
                  created_at=created_at)
