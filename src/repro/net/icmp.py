"""ICMP message construction.

Only the message types the paper's tooling needs are modeled: echo /
echo-reply (ping, and the grouped prober of Mukherjee [19]), time-exceeded
(traceroute), and port-unreachable (traceroute's terminal reply).
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import (
    KIND_ICMP_ECHO,
    KIND_ICMP_ECHO_REPLY,
    KIND_ICMP_PORT_UNREACHABLE,
    KIND_ICMP_TIME_EXCEEDED,
    Packet,
)

#: Wire size of an ICMP echo request/reply (classic ping default payload).
ECHO_SIZE_BYTES = 64

#: Wire size of an ICMP error message (IP header + 8 bytes of the original).
ERROR_SIZE_BYTES = 56


class EchoContext:
    """Identifier/sequence pair carried by echo requests and replies."""

    __slots__ = ("ident", "seq")

    def __init__(self, ident: int, seq: int) -> None:
        self.ident = ident
        self.seq = seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EchoContext):
            return NotImplemented
        return self.ident == other.ident and self.seq == other.seq

    def __hash__(self) -> int:
        return hash((self.ident, self.seq))

    def __repr__(self) -> str:
        return f"EchoContext(ident={self.ident!r}, seq={self.seq!r})"


class ErrorContext:
    """What an ICMP error reports about the packet that triggered it."""

    __slots__ = ("reporter", "original_uid", "original_src", "original_dst",
                 "original_src_port", "original_dst_port")

    def __init__(self, reporter: str, original_uid: int, original_src: str,
                 original_dst: str, original_src_port: Optional[int],
                 original_dst_port: Optional[int]) -> None:
        self.reporter = reporter
        self.original_uid = original_uid
        self.original_src = original_src
        self.original_dst = original_dst
        self.original_src_port = original_src_port
        self.original_dst_port = original_dst_port

    def _key(self) -> tuple:
        return (self.reporter, self.original_uid, self.original_src,
                self.original_dst, self.original_src_port,
                self.original_dst_port)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ErrorContext):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"ErrorContext(reporter={self.reporter!r}, "
                f"original_uid={self.original_uid!r}, "
                f"original_src={self.original_src!r}, "
                f"original_dst={self.original_dst!r}, "
                f"original_src_port={self.original_src_port!r}, "
                f"original_dst_port={self.original_dst_port!r})")


def make_echo(src: str, dst: str, ident: int, seq: int, created_at: float,
              size_bytes: int = ECHO_SIZE_BYTES, ttl: int = 64,
              record_route: bool = False) -> Packet:
    """Build an ICMP echo request.

    With ``record_route`` the packet carries the IP record-route option:
    every visited node appends its name, and the echo reply continues the
    same list — how the paper obtained the Table 1 route with ping.
    """
    return Packet(src=src, dst=dst, kind=KIND_ICMP_ECHO,
                  size_bytes=size_bytes, ttl=ttl,
                  payload=EchoContext(ident=ident, seq=seq),
                  created_at=created_at,
                  record=[] if record_route else None)


def make_echo_reply(echo: Packet, created_at: float) -> Packet:
    """Build the reply to ``echo`` (src/dst swapped, payload preserved).

    A record-route list is carried over so the reply keeps appending, as
    the real IP option does across the round trip.
    """
    return Packet(src=echo.dst, dst=echo.src, kind=KIND_ICMP_ECHO_REPLY,
                  size_bytes=echo.size_bytes, payload=echo.payload,
                  created_at=created_at, record=echo.record)


def make_error(kind: str, reporter: str, offending: Packet,
               created_at: float) -> Packet:
    """Build a time-exceeded or port-unreachable error about ``offending``."""
    if kind not in (KIND_ICMP_TIME_EXCEEDED, KIND_ICMP_PORT_UNREACHABLE):
        raise ValueError(f"not an ICMP error kind: {kind!r}")
    context = ErrorContext(
        reporter=reporter,
        original_uid=offending.uid,
        original_src=offending.src,
        original_dst=offending.dst,
        original_src_port=offending.src_port,
        original_dst_port=offending.dst_port,
    )
    return Packet(src=reporter, dst=offending.src, kind=kind,
                  size_bytes=ERROR_SIZE_BYTES, payload=context,
                  created_at=created_at)
