"""Packet taps: per-interface packet capture for the simulator.

A :class:`PacketTap` wraps an interface's delivery path and records
``(time, uid, kind, src, dst, size)`` for every packet that crosses it —
the simulator's tcpdump.  Captures export to CSV and support simple
interarrival/throughput queries, which the queue-dynamics analyses and
debugging sessions use.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import AnalysisError
from repro.net.link import Interface
from repro.units import bytes_to_bits


class CaptureRecord:
    """One captured packet crossing (immutable value object)."""

    __slots__ = ("time", "uid", "kind", "src", "dst", "size_bytes")

    def __init__(self, time: float, uid: int, kind: str, src: str,
                 dst: str, size_bytes: int) -> None:
        self.time = time
        self.uid = uid
        self.kind = kind
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes

    def _key(self) -> tuple:
        return (self.time, self.uid, self.kind, self.src, self.dst,
                self.size_bytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CaptureRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"CaptureRecord(time={self.time!r}, uid={self.uid!r}, "
                f"kind={self.kind!r}, src={self.src!r}, dst={self.dst!r}, "
                f"size_bytes={self.size_bytes!r})")


class PacketTap:
    """Records every packet delivered through one interface.

    The tap hooks the interface's ``_deliver`` step (after propagation and
    ingress fault filtering), so it sees exactly the packets the receiving
    node sees.

    Parameters
    ----------
    interface:
        Interface to monitor.
    kinds:
        Optional filter; only these packet kinds are recorded.
    """

    def __init__(self, interface: Interface,
                 kinds: Optional[set] = None) -> None:
        self.interface = interface
        self.kinds = set(kinds) if kinds else None
        self.records: list[CaptureRecord] = []
        self._original_deliver = interface._deliver
        interface._deliver = self._tapped_deliver  # type: ignore[assignment]

    def _tapped_deliver(self) -> None:
        # The arriving packet is the head of the interface's in-flight
        # FIFO; the original _deliver pops it.
        packet = self.interface._inflight[0]
        if self.kinds is None or packet.kind in self.kinds:
            self.records.append(CaptureRecord(
                time=self.interface._sim.now, uid=packet.uid,
                kind=packet.kind, src=packet.src, dst=packet.dst,
                size_bytes=packet.size_bytes))
        self._original_deliver()

    def close(self) -> None:
        """Unhook the tap; recorded packets stay available."""
        self.interface._deliver = self._original_deliver  # type: ignore

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def times(self) -> np.ndarray:
        """Capture timestamps in order."""
        return np.asarray([r.time for r in self.records])

    def interarrival_times(self) -> np.ndarray:
        """Gaps between consecutive captured packets."""
        times = self.times()
        if times.size < 2:
            raise AnalysisError("need at least two captures")
        return np.diff(times)

    def throughput_bps(self) -> float:
        """Average captured rate over the capture span."""
        if len(self.records) < 2:
            return 0.0
        span = self.records[-1].time - self.records[0].time
        if span <= 0:
            return 0.0
        total_bits = sum(bytes_to_bits(r.size_bytes) for r in self.records)
        return total_bits / span

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write the capture as CSV (tcpdump-lite)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time", "uid", "kind", "src", "dst",
                             "size_bytes"])
            for r in self.records:
                writer.writerow([f"{r.time:.9f}", r.uid, r.kind, r.src,
                                 r.dst, r.size_bytes])
