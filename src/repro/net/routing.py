"""Network container and static shortest-path routing.

:class:`Network` owns the nodes, wires up links (a bidirectional link is a
pair of :class:`~repro.net.link.Interface` objects), and fills every node's
next-hop table from shortest paths computed with networkx.  Routing is
static, matching the paper's setting of a single stable route per connection
(Table 1 / Table 2); dynamic effects are injected with
:class:`~repro.net.faults.RouteFlapFault`.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.errors import AddressError, ConfigurationError, RoutingError
from repro.net.host import Host
from repro.net.link import Interface
from repro.net.node import Node
from repro.net.queue import DropTailQueue, MODE_PACKETS
from repro.net.clocks import Clock
from repro.sim.kernel import Simulator

#: Default output buffer size, in packets, for newly created links.
DEFAULT_QUEUE_CAPACITY = 64


class Network:
    """A collection of nodes, links, and their routing tables."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: dict[str, Node] = {}
        self._edges: list[tuple[str, str, Interface]] = []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add_router(self, name: str, processing_delay: float = 0.0) -> Node:
        """Create and register a forwarding-only node."""
        node = Node(self.sim, name, processing_delay=processing_delay)
        self._register(node)
        return node

    def add_host(self, name: str, clock: Optional[Clock] = None,
                 processing_delay: float = 0.0) -> Host:
        """Create and register an end host (UDP stack + clock)."""
        host = Host(self.sim, name, clock=clock,
                    processing_delay=processing_delay)
        self._register(host)
        return host

    def _register(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def link(self, a: str, b: str, rate_bps: float, prop_delay: float,
             queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
             queue_mode: str = MODE_PACKETS,
             rate_bps_ba: Optional[float] = None,
             prop_delay_ba: Optional[float] = None,
             queue_capacity_ba: Optional[int] = None,
             ) -> tuple[Interface, Interface]:
        """Create a bidirectional link between nodes ``a`` and ``b``.

        The reverse direction defaults to the forward parameters; pass the
        ``*_ba`` overrides for asymmetric links.  Returns the two interfaces
        ``(a->b, b->a)``.
        """
        node_a = self.node(a)
        node_b = self.node(b)
        iface_ab = self._make_interface(node_a, node_b, rate_bps, prop_delay,
                                        queue_capacity, queue_mode)
        iface_ba = self._make_interface(
            node_b, node_a,
            rate_bps if rate_bps_ba is None else rate_bps_ba,
            prop_delay if prop_delay_ba is None else prop_delay_ba,
            queue_capacity if queue_capacity_ba is None else queue_capacity_ba,
            queue_mode)
        self._edges.append((a, b, iface_ab))
        self._edges.append((b, a, iface_ba))
        return iface_ab, iface_ba

    def _make_interface(self, sender: Node, receiver: Node, rate_bps: float,
                        prop_delay: float, queue_capacity: int,
                        queue_mode: str) -> Interface:
        queue = DropTailQueue(self.sim, capacity=queue_capacity,
                              mode=queue_mode,
                              name=f"{sender.name}->{receiver.name}")
        interface = Interface(self.sim, sender, rate_bps=rate_bps,
                              prop_delay=prop_delay, queue=queue)
        interface.attach_peer(receiver)
        sender.add_interface(receiver.name, interface)
        return interface

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Return the node called ``name``."""
        try:
            return self.nodes[name]
        except KeyError:
            raise AddressError(f"unknown node {name!r}") from None

    def host(self, name: str) -> Host:
        """Return the host called ``name`` (error if it is a plain router)."""
        node = self.node(name)
        if not isinstance(node, Host):
            raise AddressError(f"node {name!r} is a router, not a host")
        return node

    def interface(self, a: str, b: str) -> Interface:
        """Return the ``a -> b`` interface of the direct link between them."""
        return self.node(a).interface_to(b)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def graph(self) -> "nx.DiGraph":
        """The topology as a directed graph weighted by propagation delay."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for a, b, iface in self._edges:
            # Tiny constant keeps zero-delay LANs from producing ties
            # resolved arbitrarily; hop count then dominates.
            graph.add_edge(a, b, weight=iface.prop_delay + 1e-6,
                           interface=iface)
        return graph

    def compute_routes(self) -> None:
        """Fill every node's next-hop table with shortest-path routes."""
        graph = self.graph()
        for source in self.nodes:
            paths = nx.shortest_path(graph, source=source, weight="weight")
            node = self.nodes[source]
            for destination, path in paths.items():
                if destination == source or len(path) < 2:
                    continue
                node.set_next_hop(destination, path[1])

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def audit(self) -> dict[str, int]:
        """Network-wide packet accounting totals.

        Returns the sums of every conservation-relevant counter:
        ``udp_sent``, ``udp_received``, ``queue_drops``, ``fault_drops``,
        ``no_route_drops``, ``ttl_drops``, and ``queued`` (packets still
        sitting in buffers).  On a quiesced network that carried only UDP
        (no ICMP errors generated), conservation holds:
        ``udp_sent = udp_received + all drops + queued``.
        """
        from repro.net.host import Host  # local import: avoid cycle at load

        totals = {"udp_sent": 0, "udp_received": 0, "queue_drops": 0,
                  "fault_drops": 0, "no_route_drops": 0, "ttl_drops": 0,
                  "queued": 0}
        for node in self.nodes.values():
            totals["no_route_drops"] += node.no_route_drops
            totals["ttl_drops"] += node.ttl_drops
            if isinstance(node, Host):
                totals["udp_sent"] += node.udp_sent
                totals["udp_received"] += node.udp_received
            for interface in node.interfaces.values():
                totals["queue_drops"] += interface.queue.drops
                totals["fault_drops"] += interface.fault_drops
                totals["queued"] += len(interface.queue)
        return totals

    def path(self, src: str, dst: str, max_hops: int = 64) -> list[str]:
        """Follow next-hop tables from ``src`` to ``dst``; detects loops."""
        self.node(src)
        self.node(dst)
        path = [src]
        current = src
        while current != dst:
            if len(path) > max_hops:
                raise RoutingError(
                    f"routing loop or path longer than {max_hops} hops "
                    f"from {src!r} to {dst!r}: {path}")
            next_hop = self.nodes[current].routing.get(dst)
            if next_hop is None:
                raise RoutingError(f"{current!r} has no route to {dst!r}")
            path.append(next_hop)
            current = next_hop
        return path

    def __repr__(self) -> str:
        return (f"<Network {len(self.nodes)} nodes, "
                f"{len(self._edges) // 2} links>")
