"""End hosts: UDP sockets and local clocks.

A :class:`Host` adds to :class:`~repro.net.node.Node` the two things the
measurement tooling needs: UDP port demultiplexing (NetDyn's source and echo
agents are UDP applications) and a host clock, which can be quantized to
model the DECstation 5000's 3.906 ms resolution.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import PortInUseError
from repro.net import icmp
from repro.net.node import Node
from repro.net.packet import (
    KIND_ICMP_PORT_UNREACHABLE,
    KIND_UDP,
    Packet,
    make_udp,
)
from repro.net.clocks import Clock, PerfectClock
from repro.sim.kernel import Simulator

#: Signature of UDP receive callbacks: ``callback(packet)``.
UdpHandler = Callable[[Packet], None]


class Host(Node):
    """A node with a UDP stack and a local clock.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Unique host name / address.
    clock:
        Local clock model; defaults to a perfect (unquantized) clock.
    processing_delay:
        Per-packet forwarding latency when the host routes traffic.
    """

    def __init__(self, sim: Simulator, name: str,
                 clock: Optional[Clock] = None,
                 processing_delay: float = 0.0) -> None:
        super().__init__(sim, name, processing_delay=processing_delay)
        self.clock: Clock = clock if clock is not None else PerfectClock(sim)
        self._udp_bindings: dict[int, UdpHandler] = {}
        self.udp_received = 0
        self.udp_sent = 0

    # ------------------------------------------------------------------
    # UDP API
    # ------------------------------------------------------------------
    def bind_udp(self, port: int, handler: UdpHandler) -> None:
        """Register ``handler`` for datagrams arriving on ``port``."""
        if port in self._udp_bindings:
            raise PortInUseError(f"{self.name}: UDP port {port} already bound")
        self._udp_bindings[port] = handler

    def unbind_udp(self, port: int) -> None:
        """Release ``port``; unknown ports are ignored."""
        self._udp_bindings.pop(port, None)

    def send_udp(self, dst: str, src_port: int, dst_port: int,
                 payload: Any = None, payload_bytes: int = 0,
                 ttl: int = 64) -> Packet:
        """Create and originate a UDP datagram; returns the packet."""
        packet = make_udp(src=self.name, dst=dst, src_port=src_port,
                          dst_port=dst_port, payload=payload,
                          payload_bytes=payload_bytes,
                          created_at=self.sim.now, ttl=ttl)
        self.udp_sent += 1
        self.originate(packet)
        return packet

    # ------------------------------------------------------------------
    # Local delivery
    # ------------------------------------------------------------------
    def deliver_local(self, packet: Packet) -> None:
        if packet.kind == KIND_UDP:
            handler = None
            if packet.dst_port is not None:
                handler = self._udp_bindings.get(packet.dst_port)
            if handler is None:
                error = icmp.make_error(KIND_ICMP_PORT_UNREACHABLE,
                                        reporter=self.name, offending=packet,
                                        created_at=self.sim.now)
                self.originate(error)
                return
            self.udp_received += 1
            handler(packet)
            return
        super().deliver_local(packet)

    def __repr__(self) -> str:
        return (f"<Host {self.name} ports={sorted(self._udp_bindings)} "
                f"deg={len(self.interfaces)}>")
