"""Observer protocols for the network substrate's lifecycle hooks.

Components (:class:`~repro.net.queue.DropTailQueue`,
:class:`~repro.net.link.Interface`, :class:`~repro.net.node.Node`) each carry
an optional ``lifecycle`` attribute, ``None`` by default.  When set, the
component reports packet milestones — created, enqueued, dropped, tx-start,
tx-done, delivered, received — to the observer.  The contract that keeps the
simulator honest (see DESIGN.md, "observers never perturb the simulation"):

* observers only *record*; they never schedule events, draw randomness, or
  mutate packets or component state;
* a disabled hook costs at most one ``is not None`` check on the hot path —
  and components may do better: :class:`~repro.net.queue.DropTailQueue`
  rebinds its ``enqueue`` method when ``lifecycle`` is assigned, so the
  untraced enqueue path carries no hook check at all (the *no-hooks fast
  path*).  Any component using that pattern must keep the fast and hooked
  implementations byte-equivalent in simulated behavior: attaching an
  observer may never change drop decisions, occupancy accounting, or event
  timing (``tests/obs/test_determinism.py`` pins this);
* the concrete implementation lives in :mod:`repro.obs.lifecycle` — the net
  layer depends only on this protocol, never on ``repro.obs``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover - type-only imports, avoids cycles
    from repro.net.link import Interface
    from repro.net.node import Node
    from repro.net.packet import Packet
    from repro.net.queue import DropTailQueue


class LifecycleObserver(Protocol):
    """Receives packet-lifecycle milestones from network components."""

    def on_created(self, node: "Node", packet: "Packet") -> None:
        """A host originated ``packet`` (UDP send or ICMP generation)."""
        ...

    def on_enqueued(self, queue: "DropTailQueue", packet: "Packet") -> None:
        """``packet`` was appended to ``queue`` (occupancy includes it)."""
        ...

    def on_queue_drop(self, queue: "DropTailQueue", packet: "Packet") -> None:
        """``packet`` overflowed ``queue`` and was tail-dropped."""
        ...

    def on_tx_start(self, interface: "Interface", packet: "Packet") -> None:
        """``interface`` began serializing ``packet``."""
        ...

    def on_tx_done(self, interface: "Interface", packet: "Packet") -> None:
        """``interface`` finished serializing ``packet`` onto the wire."""
        ...

    def on_fault_drop(self, interface: "Interface", packet: "Packet") -> None:
        """A fault model discarded ``packet`` at ``interface``."""
        ...

    def on_delivered(self, interface: "Interface", packet: "Packet") -> None:
        """``packet`` crossed ``interface`` and reached the peer node."""
        ...

    def on_received(self, node: "Node", packet: "Packet") -> None:
        """``packet`` was consumed by its final destination ``node``."""
        ...
