"""Host clock models.

The paper's timestamps come from real host clocks: the INRIA source host was
a DECstation 5000 with a **3.906 ms** clock resolution, and the UMd host used
for the UMd-Pittsburgh experiments had a **3 ms** resolution (the cause of
the regular banding visible in Figures 5 and 6).  :class:`QuantizedClock`
reproduces that artifact; :class:`SkewedClock` additionally models offset and
drift, which is why NetDyn (and this reproduction) only ever interprets
*differences* of timestamps taken on the *same* host.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator

#: DECstation 5000 clock resolution (seconds), per the paper.
DECSTATION_RESOLUTION = 3.906e-3

#: Resolution of the UMd source host in the May 1993 experiments (seconds).
UMD_RESOLUTION = 3e-3


class Clock:
    """Interface of a host clock: maps simulation time to host time."""

    def now(self) -> float:
        """Current host-local time in seconds."""
        raise NotImplementedError

    @property
    def resolution(self) -> float:
        """Smallest representable tick (0.0 for a perfect clock)."""
        return 0.0


class PerfectClock(Clock):
    """A clock that reads true simulation time with infinite resolution."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def now(self) -> float:
        return self._sim.now


class QuantizedClock(Clock):
    """A clock whose readings are floored to a fixed tick.

    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> clock = QuantizedClock(sim, resolution=DECSTATION_RESOLUTION)
    """

    def __init__(self, sim: Simulator, resolution: float) -> None:
        if resolution <= 0:
            raise ConfigurationError(
                f"clock resolution must be positive, got {resolution}")
        self._sim = sim
        self._resolution = resolution

    def now(self) -> float:
        ticks = int(self._sim.now / self._resolution)
        return ticks * self._resolution

    @property
    def resolution(self) -> float:
        return self._resolution


class SkewedClock(Clock):
    """A clock with constant offset and frequency skew (optionally quantized).

    ``host_time = offset + (1 + skew) * sim_time``, floored to ``resolution``
    when one is given.  Used by tests to demonstrate that round-trip
    measurements are immune to offset but one-way timestamps are not — the
    reason Bolot sources and sinks probes on the same host.
    """

    def __init__(self, sim: Simulator, offset: float = 0.0, skew: float = 0.0,
                 resolution: float = 0.0) -> None:
        if resolution < 0:
            raise ConfigurationError(
                f"clock resolution must be >= 0, got {resolution}")
        self._sim = sim
        self._offset = offset
        self._skew = skew
        self._resolution = resolution

    def now(self) -> float:
        reading = self._offset + (1.0 + self._skew) * self._sim.now
        if self._resolution > 0:
            reading = int(reading / self._resolution) * self._resolution
        return reading

    @property
    def resolution(self) -> float:
        return self._resolution
