"""Fault models attachable to network interfaces.

The paper attributes part of the observed ~10% stationary loss to faulty
Ethernet/FDDI interface cards in Suranet that randomly drop packets (up to
3%, [17]), and cites NetDyn's discovery of a gateway 'debug' option that
stalled forwarding every 90 seconds [21, 22].  These models reproduce both,
plus route flapping, so the examples can re-enact NetDyn's network-debugging
use cases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.net.node import Node


class FaultModel:
    """Base class; by default a fault neither drops nor stalls anything."""

    def drops(self, packet: Packet, sim: Simulator) -> bool:
        """Return True to silently discard ``packet``."""
        return False

    def stalled_until(self, now: float) -> float:
        """Earliest time the interface may transmit; ``now`` means no stall."""
        return now


class RandomDropFault(FaultModel):
    """Drops each packet independently with fixed probability.

    Models the faulty Suranet interface cards of [17] (loss rates up to 3%).
    """

    def __init__(self, probability: float, rng: np.random.Generator) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"drop probability must be in [0, 1], got {probability}")
        self.probability = probability
        self._rng = rng
        self.dropped = 0

    def drops(self, packet: Packet, sim: Simulator) -> bool:
        if self._rng.random() < self.probability:
            self.dropped += 1
            return True
        return False

    def drops_many(self, count: int) -> np.ndarray:
        """Drop decisions for ``count`` consecutive packets, as a mask.

        Draw-for-draw identical to ``count`` sequential :meth:`drops`
        calls: ``Generator.random(size=n)`` consumes the same underlying
        doubles in the same order as ``n`` scalar draws, and the drop
        counter advances by the same amount.  The analytic fast-forward
        engine uses this to replay a whole probe train's decisions at one
        fault stage in a single vectorized draw.
        """
        mask = self._rng.random(count) < self.probability
        self.dropped += int(mask.sum())
        return mask


class PeriodicStallFault(FaultModel):
    """Freezes the transmitter for ``stall`` seconds every ``period`` seconds.

    Models the gateway 'debug' option found by Sanghi et al. in May 1992:
    round-trip delays increased dramatically every 90 seconds while the
    gateway dumped state [22].
    """

    def __init__(self, period: float, stall: float, phase: float = 0.0) -> None:
        if period <= 0 or stall < 0 or stall >= period:
            raise ConfigurationError(
                f"need 0 <= stall < period, got stall={stall} period={period}")
        self.period = period
        self.stall = stall
        self.phase = phase

    def stalled_until(self, now: float) -> float:
        offset = (now - self.phase) % self.period
        if offset < self.stall:
            return now + (self.stall - offset)
        return now


class RouteFlapFault:
    """Periodically toggles a node's next hop for one destination.

    Models the route changes whose delay signatures NetDyn observed [21].
    Unlike the interface faults this acts on a node's routing table; call
    :meth:`install` once the topology is built.
    """

    def __init__(self, sim: Simulator, node: "Node", destination: str,
                 primary_peer: str, backup_peer: str, period: float) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self._sim = sim
        self._node = node
        self._destination = destination
        self._peers = (primary_peer, backup_peer)
        self._period = period
        self._using_backup = False
        self.flaps = 0

    def install(self) -> None:
        """Start flapping; the first flap happens one period from now."""
        self._sim.schedule(self._period, self._flap, label="route-flap")

    def _flap(self) -> None:
        self._using_backup = not self._using_backup
        peer = self._peers[1] if self._using_backup else self._peers[0]
        self._node.set_next_hop(self._destination, peer)
        self.flaps += 1
        self._sim.schedule(self._period, self._flap, label="route-flap")
