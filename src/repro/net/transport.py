"""A minimal window-based reliable transport ("mini-TCP").

The paper's cross traffic was mostly TCP bulk transfer, whose congestion
control *reacts* to the probes: when probe traffic claims bottleneck
bandwidth, TCP backs off.  The open-loop sources in :mod:`repro.traffic`
cannot do that, so this module provides a small Tahoe-style transport —
slow start, congestion avoidance, timeout + fast-retransmit loss recovery —
good enough to study:

* responsive vs non-responsive cross traffic (the δ = 8 ms ablation);
* the two-way-traffic dynamics of Zhang et al. [28, 29]: data and ACK
  packets interacting in shared queues, producing ACK compression — the
  phenomenon probe compression is named after.

This is intentionally *not* a full TCP: no sequence wraparound, no SACK,
no delayed ACKs, no Nagle; segments are fixed-size and flow is one-way
with pure ACKs returning.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.net.packet import Packet, UDP_WIRE_OVERHEAD_BYTES

#: Pure-ACK wire size: headers only.
ACK_WIRE_BYTES = UDP_WIRE_OVERHEAD_BYTES

#: Conventional initial retransmission timeout, seconds.
INITIAL_RTO = 1.0

#: Default initial slow-start threshold, segments.
DEFAULT_SSTHRESH = 32.0

#: Default congestion-window cap (receiver window), segments.
DEFAULT_MAX_WINDOW = 64.0


class TransferStats:
    """Counters exposed by a :class:`MiniTcpSender`."""

    __slots__ = ("segments_sent", "retransmissions", "timeouts",
                 "fast_retransmits", "acks_received")

    def __init__(self, segments_sent: int = 0, retransmissions: int = 0,
                 timeouts: int = 0, fast_retransmits: int = 0,
                 acks_received: int = 0) -> None:
        self.segments_sent = segments_sent
        self.retransmissions = retransmissions
        self.timeouts = timeouts
        self.fast_retransmits = fast_retransmits
        self.acks_received = acks_received

    @property
    def goodput_segments(self) -> int:
        """Distinct segments delivered (sent minus retransmissions)."""
        return self.segments_sent - self.retransmissions

    def __repr__(self) -> str:
        return (f"TransferStats(segments_sent={self.segments_sent!r}, "
                f"retransmissions={self.retransmissions!r}, "
                f"timeouts={self.timeouts!r}, "
                f"fast_retransmits={self.fast_retransmits!r}, "
                f"acks_received={self.acks_received!r})")


class MiniTcpReceiver:
    """Receives segments on a UDP port, returns cumulative ACKs."""

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.next_expected = 0
        self.segments_received = 0
        self.out_of_order = 0
        self.duplicates = 0
        self._buffered: set[int] = set()
        host.bind_udp(port, self._on_segment)

    def _on_segment(self, packet: Packet) -> None:
        seq = packet.payload
        self.segments_received += 1
        if seq == self.next_expected:
            self.next_expected += 1
            while self.next_expected in self._buffered:
                self._buffered.remove(self.next_expected)
                self.next_expected += 1
        elif seq > self.next_expected:
            self.out_of_order += 1
            self._buffered.add(seq)
        else:
            # A retransmission of something already delivered in order:
            # without this counter it is indistinguishable from a first
            # delivery in ``segments_received``.
            self.duplicates += 1
        # Cumulative ACK for everything in order so far (dupACK when the
        # segment was out of order or a duplicate).
        self.host.send_udp(packet.src, src_port=self.port,
                           dst_port=packet.src_port,
                           payload=("ack", self.next_expected),
                           payload_bytes=0)

    def close(self) -> None:
        """Release the UDP port."""
        self.host.unbind_udp(self.port)


class MiniTcpSender:
    """Tahoe-style sender: slow start, congestion avoidance, Tahoe recovery.

    Parameters
    ----------
    host:
        Sending host.
    destination:
        Receiver host name.
    port:
        Receiver port (sender binds the same port number locally for ACKs).
    total_segments:
        Transfer length; the sender stops once all are ACKed.
    segment_bytes:
        Payload size of each data segment (512 default).
    initial_ssthresh:
        Initial slow-start threshold, in segments.
    max_window:
        Hard cap on the congestion window (receiver window), segments.
    """

    def __init__(self, host: Host, destination: str, port: int,
                 total_segments: int, segment_bytes: int = 512,
                 initial_ssthresh: float = DEFAULT_SSTHRESH,
                 max_window: float = DEFAULT_MAX_WINDOW) -> None:
        if total_segments < 1:
            raise ConfigurationError(
                f"need at least one segment, got {total_segments}")
        if segment_bytes < 1:
            raise ConfigurationError(
                f"segment size must be positive, got {segment_bytes}")
        self.host = host
        self.destination = destination
        self.port = port
        self.total_segments = total_segments
        self.segment_bytes = segment_bytes
        self.cwnd = 1.0
        self.ssthresh = initial_ssthresh
        self.max_window = max_window
        self.stats = TransferStats()
        self.finished = False
        self.finish_time: Optional[float] = None
        self._next_to_send = 0
        self._highest_acked = 0  # next expected by receiver
        self._duplicate_acks = 0
        self._rto = INITIAL_RTO
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._timer = None
        self._send_times: dict[int, float] = {}
        self._resent: set[int] = set()
        # RTT is measured on one "timed" segment at a time (the classic
        # pre-timestamp TCP approach): cumulative ACKs for other segments
        # can be delayed by unrelated recoveries and must not be sampled.
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        host.bind_udp(port, self._on_ack)

    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin the transfer."""
        start_time = self.host.sim.now if at is None else at
        self.host.sim.call_at(start_time, self._fill_window,
                              label="minitcp-start")

    # ------------------------------------------------------------------
    def _in_flight(self) -> int:
        return self._next_to_send - self._highest_acked

    def _fill_window(self) -> None:
        if self.finished:
            return
        window = min(self.cwnd, self.max_window)
        while (self._in_flight() < int(window)
               and self._next_to_send < self.total_segments):
            self._transmit(self._next_to_send)
            self._next_to_send += 1
        self._arm_timer()

    def _transmit(self, seq: int) -> None:
        self.stats.segments_sent += 1
        if seq not in self._send_times:
            self._send_times[seq] = self.host.sim.now
            if self._timed_seq is None:
                self._timed_seq = seq
                self._timed_at = self.host.sim.now
        else:
            # Karn's algorithm: a segment sent more than once yields no
            # RTT sample (the ACK's trigger is ambiguous) — without this
            # the smoothed RTT absorbs timeout gaps and the RTO diverges.
            # Every re-send counts: recovery rewinds ``_next_to_send``, so
            # segments re-sent afterwards by ``_fill_window`` come through
            # here too, and counting only the first would let them inflate
            # ``goodput_segments``.
            self.stats.retransmissions += 1
            self._resent.add(seq)
            if self._timed_seq == seq:
                self._timed_seq = None
        self.host.send_udp(self.destination, src_port=self.port,
                           dst_port=self.port, payload=seq,
                           payload_bytes=self.segment_bytes)

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        if self._in_flight() > 0:
            self._timer = self.host.sim.schedule(self._rto, self._on_timeout,
                                                 label="minitcp-rto")

    # ------------------------------------------------------------------
    def _on_ack(self, packet: Packet) -> None:
        kind, acked = packet.payload
        if kind != "ack" or self.finished:
            return
        self.stats.acks_received += 1
        if acked > self._highest_acked:
            newly = acked - self._highest_acked
            if self._timed_seq is not None and acked > self._timed_seq:
                self._take_rtt_sample()
            # Segments below the cumulative ACK are delivered and can
            # never be retransmitted again; dropping their bookkeeping
            # keeps memory bounded on long transfers.
            for seq in range(self._highest_acked, acked):
                self._send_times.pop(seq, None)
                self._resent.discard(seq)
            self._highest_acked = acked
            # After a recovery rewound ``_next_to_send``, a cumulative
            # ACK can jump past it (the retransmitted hole released a
            # buffered run at the receiver).  Re-sending those delivered
            # segments would re-insert pruned ``_send_times`` entries
            # below the ACK point — where no later prune reaches them —
            # and misclassify the sends as first transmissions.
            if self._next_to_send < acked:
                self._next_to_send = acked
            self._duplicate_acks = 0
            # RFC 6298: new data acknowledged -> leave exponential
            # backoff, restarting the RTO from the smoothed estimators.
            # Without this, Karn's rule can pin a heavily-backed-off RTO
            # forever once every outstanding segment has been resent.
            if self._srtt is not None:
                self._rto = min(60.0, max(0.2,
                                          self._srtt + 4.0 * self._rttvar))
            else:
                self._rto = INITIAL_RTO
            if self.cwnd < self.ssthresh:
                self.cwnd += newly  # slow start
            else:
                self.cwnd += newly / self.cwnd  # congestion avoidance
            if self._highest_acked >= self.total_segments:
                self._complete()
                return
            self._fill_window()
        else:
            self._duplicate_acks += 1
            if self._duplicate_acks == 3:
                self._fast_retransmit()

    def _take_rtt_sample(self) -> None:
        assert self._timed_seq is not None
        sample = self.host.sim.now - self._timed_at
        self._timed_seq = None
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            # Jacobson/Karels estimators [12].
            self._rttvar = 0.75 * self._rttvar \
                + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self._rto = min(60.0, max(0.2, self._srtt + 4.0 * self._rttvar))

    def _fast_retransmit(self) -> None:
        self.stats.fast_retransmits += 1
        self._enter_recovery()

    def _on_timeout(self) -> None:
        if self.finished or self._in_flight() == 0:
            return
        self.stats.timeouts += 1
        self._rto = min(self._rto * 2.0, 60.0)  # exponential backoff
        self._enter_recovery()

    def _enter_recovery(self) -> None:
        # Tahoe: halve ssthresh, collapse window, resend from the hole.
        # ``_transmit`` counts the retransmission (as it does for every
        # segment re-sent by ``_fill_window`` after the rewind).
        self.ssthresh = max(2.0, min(self.cwnd, self.max_window) / 2.0)
        self.cwnd = 1.0
        self._duplicate_acks = 0
        self._next_to_send = self._highest_acked + 1
        self._transmit(self._highest_acked)
        self._arm_timer()

    def _complete(self) -> None:
        self.finished = True
        self.finish_time = self.host.sim.now
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def close(self) -> None:
        """Release the UDP port and cancel timers."""
        if self._timer is not None:
            self._timer.cancel()
        self.host.unbind_udp(self.port)


def start_transfer(sender_host: Host, receiver_host: Host, port: int,
                   total_segments: int, segment_bytes: int = 512,
                   at: float = 0.0,
                   initial_ssthresh: float = DEFAULT_SSTHRESH,
                   max_window: float = DEFAULT_MAX_WINDOW,
                   ) -> tuple[MiniTcpSender, MiniTcpReceiver]:
    """Wire a sender/receiver pair and start the transfer at time ``at``."""
    receiver = MiniTcpReceiver(receiver_host, port=port)
    sender = MiniTcpSender(sender_host, receiver_host.name, port=port,
                           total_segments=total_segments,
                           segment_bytes=segment_bytes,
                           initial_ssthresh=initial_ssthresh,
                           max_window=max_window)
    sender.start(at=at)
    return sender, receiver
