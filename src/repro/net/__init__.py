"""Network substrate: packets, queues, links, nodes, hosts, routing, faults.

This package implements the hop-by-hop store-and-forward network that stands
in for the 1992 Internet paths of the paper.  The bottleneck behavior the
paper models (Figure 3) emerges from :class:`~repro.net.queue.DropTailQueue`
plus :class:`~repro.net.link.Interface` serialization; nothing is special-
cased for the experiments.
"""

from repro.net.faults import (
    FaultModel,
    PeriodicStallFault,
    RandomDropFault,
    RouteFlapFault,
)
from repro.net.host import Host
from repro.net.link import Interface
from repro.net.node import Node
from repro.net.packet import (
    DEFAULT_TTL,
    KIND_ICMP_ECHO,
    KIND_ICMP_ECHO_REPLY,
    KIND_ICMP_PORT_UNREACHABLE,
    KIND_ICMP_TIME_EXCEEDED,
    KIND_UDP,
    UDP_WIRE_OVERHEAD_BYTES,
    Packet,
    make_udp,
)
from repro.net.queue import DropTailQueue, MODE_BYTES, MODE_PACKETS
from repro.net.routing import Network
from repro.net.tap import CaptureRecord, PacketTap
from repro.net.transport import (
    MiniTcpReceiver,
    MiniTcpSender,
    start_transfer,
)

__all__ = [
    "FaultModel",
    "PeriodicStallFault",
    "RandomDropFault",
    "RouteFlapFault",
    "Host",
    "Interface",
    "Node",
    "Packet",
    "make_udp",
    "DEFAULT_TTL",
    "KIND_UDP",
    "KIND_ICMP_ECHO",
    "KIND_ICMP_ECHO_REPLY",
    "KIND_ICMP_TIME_EXCEEDED",
    "KIND_ICMP_PORT_UNREACHABLE",
    "UDP_WIRE_OVERHEAD_BYTES",
    "DropTailQueue",
    "MODE_BYTES",
    "MODE_PACKETS",
    "Network",
    "PacketTap",
    "CaptureRecord",
    "MiniTcpReceiver",
    "MiniTcpSender",
    "start_transfer",
]
