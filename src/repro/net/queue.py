"""Finite drop-tail FIFO queues.

This is the buffer of Figure 3 in the paper: probe losses happen here when
the buffer overflows.  Capacity can be expressed in packets (the paper's
``K``) or in bytes; both modes are exercised by the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.hooks import LifecycleObserver
from repro.net.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.monitor import TimeWeightedValue

#: Capacity accounting modes.
MODE_PACKETS = "packets"
MODE_BYTES = "bytes"


class DropTailQueue:
    """A finite FIFO queue with tail-drop and occupancy accounting.

    Parameters
    ----------
    sim:
        Owning simulator (used for time-weighted occupancy stats).
    capacity:
        Maximum occupancy.  Interpreted per ``mode``.
    mode:
        ``"packets"`` or ``"bytes"``.
    name:
        Diagnostic label.
    """

    def __init__(self, sim: Simulator, capacity: int,
                 mode: str = MODE_PACKETS, name: str = "") -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"queue capacity must be positive, got {capacity}")
        if mode not in (MODE_PACKETS, MODE_BYTES):
            raise ConfigurationError(f"unknown queue mode {mode!r}")
        self._sim = sim
        self.capacity = capacity
        self.mode = mode
        self.name = name
        self._packets: deque[Packet] = deque()
        self._bytes = 0
        self.arrivals = 0
        self.drops = 0
        self.departures = 0
        self.occupancy_packets = TimeWeightedValue(sim, 0.0)
        self.occupancy_bytes = TimeWeightedValue(sim, 0.0)
        #: Optional packet-lifecycle observer (see repro.net.hooks).
        self.lifecycle: Optional[LifecycleObserver] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._packets)

    @property
    def bytes_queued(self) -> int:
        """Total wire bytes currently buffered."""
        return self._bytes

    def _occupancy_after(self, packet: Packet) -> int:
        if self.mode == MODE_PACKETS:
            return len(self._packets) + 1
        return self._bytes + packet.size_bytes

    def would_drop(self, packet: Packet) -> bool:
        """True if enqueuing ``packet`` now would overflow the buffer."""
        return self._occupancy_after(packet) > self.capacity

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet`` if it fits; return False (and count) on drop."""
        self.arrivals += 1
        if self.would_drop(packet):
            self.drops += 1
            if self.lifecycle is not None:
                self.lifecycle.on_queue_drop(self, packet)
            return False
        self._packets.append(packet)
        self._bytes += packet.size_bytes
        self._record_occupancy()
        if self.lifecycle is not None:
            self.lifecycle.on_enqueued(self, packet)
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head-of-line packet, or None if empty."""
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size_bytes
        self.departures += 1
        self._record_occupancy()
        return packet

    def _record_occupancy(self) -> None:
        self.occupancy_packets.update(float(len(self._packets)))
        self.occupancy_bytes.update(float(self._bytes))

    # ------------------------------------------------------------------
    @property
    def loss_fraction(self) -> float:
        """Fraction of arrivals dropped so far."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals

    def __repr__(self) -> str:
        return (f"<DropTailQueue {self.name!r} {len(self._packets)} pkts/"
                f"{self._bytes}B of {self.capacity} {self.mode}, "
                f"{self.drops} drops>")
