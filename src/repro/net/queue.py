"""Finite drop-tail FIFO queues.

This is the buffer of Figure 3 in the paper: probe losses happen here when
the buffer overflows.  Capacity can be expressed in packets (the paper's
``K``) or in bytes; both modes are exercised by the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.hooks import LifecycleObserver
from repro.net.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.monitor import TimeWeightedValue

#: Capacity accounting modes.
MODE_PACKETS = "packets"
MODE_BYTES = "bytes"


class DropTailQueue:
    """A finite FIFO queue with tail-drop and occupancy accounting.

    Parameters
    ----------
    sim:
        Owning simulator (used for time-weighted occupancy stats).
    capacity:
        Maximum occupancy.  Interpreted per ``mode``.
    mode:
        ``"packets"`` or ``"bytes"``.
    name:
        Diagnostic label.
    """

    def __init__(self, sim: Simulator, capacity: int,
                 mode: str = MODE_PACKETS, name: str = "") -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"queue capacity must be positive, got {capacity}")
        if mode not in (MODE_PACKETS, MODE_BYTES):
            raise ConfigurationError(f"unknown queue mode {mode!r}")
        self._sim = sim
        self.capacity = capacity
        self.mode = mode
        self.name = name
        self._packets: deque[Packet] = deque()
        self._bytes = 0
        self.arrivals = 0
        self.drops = 0
        self.departures = 0
        self.occupancy_packets = TimeWeightedValue(sim, 0.0)
        self.occupancy_bytes = TimeWeightedValue(sim, 0.0)
        # Sets the lifecycle property, which binds self.enqueue to the
        # no-hooks fast path until an observer is attached.
        self.lifecycle = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._packets)

    @property
    def bytes_queued(self) -> int:
        """Total wire bytes currently buffered."""
        return self._bytes

    def _occupancy_after(self, packet: Packet) -> int:
        if self.mode == MODE_PACKETS:
            return len(self._packets) + 1
        return self._bytes + packet.size_bytes

    def would_drop(self, packet: Packet) -> bool:
        """True if enqueuing ``packet`` now would overflow the buffer."""
        return self._occupancy_after(packet) > self.capacity

    @property
    def lifecycle(self) -> Optional[LifecycleObserver]:
        """Optional packet-lifecycle observer (see repro.net.hooks).

        Assigning an observer swaps ``self.enqueue`` to the hooked
        implementation; assigning ``None`` restores the no-hooks fast path,
        so the common untraced case pays zero per-packet hook checks on the
        enqueue step.  Both implementations do identical queue accounting —
        attaching an observer never changes drop decisions or occupancy.
        """
        return self._lifecycle

    @lifecycle.setter
    def lifecycle(self, observer: Optional[LifecycleObserver]) -> None:
        self._lifecycle = observer
        self.enqueue = (self._enqueue_fast if observer is None
                        else self._enqueue_hooked)

    def _enqueue_fast(self, packet: Packet) -> bool:
        """``enqueue`` with no lifecycle observer attached."""
        self.arrivals += 1
        if self._occupancy_after(packet) > self.capacity:
            self.drops += 1
            return False
        self._packets.append(packet)
        self._bytes += packet.size_bytes
        self._record_occupancy()
        return True

    def _enqueue_hooked(self, packet: Packet) -> bool:
        """``enqueue`` while a lifecycle observer is attached."""
        self.arrivals += 1
        if self._occupancy_after(packet) > self.capacity:
            self.drops += 1
            self._lifecycle.on_queue_drop(self, packet)
            return False
        self._packets.append(packet)
        self._bytes += packet.size_bytes
        self._record_occupancy()
        self._lifecycle.on_enqueued(self, packet)
        return True

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet`` if it fits; return False (and count) on drop.

        Rebound per instance by the ``lifecycle`` setter to the fast or
        hooked implementation; this class-level fallback only exists for
        introspection and subclasses that bypass ``__init__``.
        """
        return self._enqueue_fast(packet)

    def dequeue(self) -> Optional[Packet]:
        """Pop the head-of-line packet, or None if empty."""
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size_bytes
        self.departures += 1
        self._record_occupancy()
        return packet

    def _record_occupancy(self) -> None:
        self.occupancy_packets.update(float(len(self._packets)))
        self.occupancy_bytes.update(float(self._bytes))

    # ------------------------------------------------------------------
    @property
    def loss_fraction(self) -> float:
        """Fraction of arrivals dropped so far."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals

    def __repr__(self) -> str:
        return (f"<DropTailQueue {self.name!r} {len(self._packets)} pkts/"
                f"{self._bytes}B of {self.capacity} {self.mode}, "
                f"{self.drops} drops>")
