"""Nodes: packet forwarding, TTL handling, and ICMP generation.

A :class:`Node` is a router; :class:`repro.net.host.Host` extends it with
UDP port demultiplexing and local clocks.  Forwarding is next-hop based:
``routing[dst] -> peer name -> interface``.  Tables are filled in by
:meth:`repro.net.routing.Network.compute_routes`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.errors import RoutingError
from repro.net import icmp
from repro.net.hooks import LifecycleObserver
from repro.net.link import Interface
from repro.net.packet import (
    KIND_ICMP_ECHO,
    KIND_ICMP_TIME_EXCEEDED,
    Packet,
)
from repro.sim.kernel import Simulator

#: Signature of local ICMP delivery callbacks.
IcmpListener = Callable[[Packet], None]


class Node:
    """A store-and-forward network node (router).

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Unique node name; doubles as the node's address.
    processing_delay:
        Fixed per-packet forwarding latency in seconds (switch fabric /
        route lookup).  Applied before the packet is handed to the output
        interface.
    """

    def __init__(self, sim: Simulator, name: str,
                 processing_delay: float = 0.0) -> None:
        self.sim = sim
        self.name = name
        self.processing_delay = processing_delay
        self.interfaces: dict[str, Interface] = {}
        self.routing: dict[str, str] = {}
        self.icmp_listeners: list[IcmpListener] = []
        self.forwarded = 0
        self.no_route_drops = 0
        self.ttl_drops = 0
        #: Optional packet-lifecycle observer (see repro.net.hooks).
        self.lifecycle: Optional[LifecycleObserver] = None
        # Packets waiting out the processing delay, FIFO: every forward at
        # this node has the same delay, so the pending events complete in
        # schedule order and one persistent callback + deque replaces a
        # closure per forwarded packet (see DESIGN.md, "Hot path").
        self._fwd_pending: deque[tuple[Packet, Interface]] = deque()
        self._fwd_ref = self._forward_done
        self._fwd_label = f"fwd {name}"

    # ------------------------------------------------------------------
    # Topology wiring (used by Network)
    # ------------------------------------------------------------------
    def add_interface(self, peer_name: str, interface: Interface) -> None:
        """Register the interface whose link leads to ``peer_name``."""
        self.interfaces[peer_name] = interface

    def set_next_hop(self, destination: str, peer_name: str) -> None:
        """Point the route for ``destination`` at neighbor ``peer_name``."""
        if peer_name not in self.interfaces:
            raise RoutingError(
                f"{self.name}: no interface toward {peer_name!r}")
        self.routing[destination] = peer_name

    def interface_to(self, peer_name: str) -> Interface:
        """The interface whose link leads to direct neighbor ``peer_name``."""
        try:
            return self.interfaces[peer_name]
        except KeyError:
            raise RoutingError(
                f"{self.name}: not adjacent to {peer_name!r}") from None

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, ingress: Optional[Interface] = None) -> None:
        """Entry point for packets arriving from a link."""
        if packet.record is not None:
            packet.record.append(self.name)
        if packet.dst == self.name:
            if self.lifecycle is not None:
                self.lifecycle.on_received(self, packet)
            self.deliver_local(packet)
            return
        packet.ttl -= 1
        packet.hops += 1
        if packet.ttl <= 0:
            self.ttl_drops += 1
            self._report_error(KIND_ICMP_TIME_EXCEEDED, packet)
            return
        self._forward(packet)

    def originate(self, packet: Packet) -> None:
        """Send a locally generated packet (no TTL decrement at hop zero)."""
        if self.lifecycle is not None:
            self.lifecycle.on_created(self, packet)
        if packet.dst == self.name:
            self.deliver_local(packet)
            return
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        peer_name = self.routing.get(packet.dst)
        if peer_name is None:
            self.no_route_drops += 1
            return
        interface = self.interfaces[peer_name]
        self.forwarded += 1
        if self.processing_delay > 0:
            self._fwd_pending.append((packet, interface))
            self.sim.schedule(self.processing_delay, self._fwd_ref,
                              label=self._fwd_label)
        else:
            interface.send(packet)

    def _forward_done(self) -> None:
        packet, interface = self._fwd_pending.popleft()
        interface.send(packet)

    def _report_error(self, kind: str, offending: Packet) -> None:
        """Send an ICMP error about ``offending`` back to its source."""
        if offending.is_icmp_error:
            return  # never generate errors about errors (RFC 1122)
        error = icmp.make_error(kind, reporter=self.name,
                                offending=offending, created_at=self.sim.now)
        self.originate(error)

    # ------------------------------------------------------------------
    # Local delivery
    # ------------------------------------------------------------------
    def deliver_local(self, packet: Packet) -> None:
        """Handle a packet addressed to this node."""
        if packet.kind == KIND_ICMP_ECHO:
            reply = icmp.make_echo_reply(packet, created_at=self.sim.now)
            self.originate(reply)
            return
        if packet.is_icmp:
            for listener in self.icmp_listeners:
                listener(packet)
            return
        # Base nodes have no transport layer; Host overrides for UDP.

    def add_icmp_listener(self, listener: IcmpListener) -> None:
        """Receive locally delivered ICMP replies and errors."""
        self.icmp_listeners.append(listener)

    def __repr__(self) -> str:
        return f"<Node {self.name} deg={len(self.interfaces)}>"
