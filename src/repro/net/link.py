"""Network interfaces and links.

An :class:`Interface` is the transmitting side of a unidirectional link: it
owns the output :class:`~repro.net.queue.DropTailQueue`, serializes packets
at the link rate, applies fault models, and delivers packets to the peer
node after the propagation delay.  A bidirectional link between two nodes is
simply a pair of interfaces, one on each node (see
:meth:`repro.net.routing.Network.link`).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.net.faults import FaultModel
from repro.net.hooks import LifecycleObserver
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.kernel import Simulator
from repro.units import seconds_to_ms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.net.node import Node


class Interface:
    """The output port of a node onto one unidirectional link.

    Parameters
    ----------
    sim:
        Owning simulator.
    node:
        The node this interface belongs to (the transmitter).
    rate_bps:
        Link bandwidth in bits per second.
    prop_delay:
        One-way propagation delay in seconds.
    queue:
        Output buffer; packets wait here while the transmitter is busy.
    name:
        Diagnostic label (defaults to ``node->peer`` when attached).
    """

    def __init__(self, sim: Simulator, node: "Node", rate_bps: float,
                 prop_delay: float, queue: DropTailQueue,
                 name: str = "") -> None:
        if rate_bps <= 0:
            raise ConfigurationError(
                f"link rate must be positive, got {rate_bps}")
        if prop_delay < 0:
            raise ConfigurationError(
                f"propagation delay must be >= 0, got {prop_delay}")
        self._sim = sim
        self.node = node
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.queue = queue
        self.name = name
        self.peer: Optional["Node"] = None
        self.egress_faults: list[FaultModel] = []
        self.ingress_faults: list[FaultModel] = []
        self._busy = False
        self.transmitted = 0
        self.transmitted_bits = 0
        self.fault_drops = 0
        self._created_at = sim.now
        self._busy_since = 0.0
        self._busy_time = 0.0
        #: Optional packet-lifecycle observer (see repro.net.hooks).
        self.lifecycle: Optional[LifecycleObserver] = None
        # Hot-path state (see DESIGN.md, "Hot path").  The transmitter is
        # serial and the propagation delay is a per-interface constant, so
        # transmission-finish and delivery events complete in the order they
        # were scheduled: one packet slot plus a FIFO of in-flight packets
        # replaces a closure per event.  The bound callbacks and labels are
        # allocated once here instead of once per packet.
        self._transmitting: Optional[Packet] = None
        self._inflight: deque[Packet] = deque()
        self._tx_done_ref = self._transmission_done
        self._deliver_ref = self._dispatch_deliver
        self._tx_label = f"tx-done {name}"
        self._deliver_label = f"deliver {name}"

    # ------------------------------------------------------------------
    def attach_peer(self, peer: "Node") -> None:
        """Set the receiving node of this link."""
        self.peer = peer
        if not self.name:
            self.name = f"{self.node.name}->{peer.name}"
        self._tx_label = f"tx-done {self.name}"
        self._deliver_label = f"deliver {self.name}"

    def add_egress_fault(self, fault: FaultModel) -> None:
        """Drop/stall packets as they are transmitted."""
        self.egress_faults.append(fault)

    def add_ingress_fault(self, fault: FaultModel) -> None:
        """Drop packets as they are received by the peer."""
        self.ingress_faults.append(fault)

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission; False if it was dropped."""
        if self.peer is None:
            raise ConfigurationError(
                f"interface {self.name!r} has no peer attached")
        for fault in self.egress_faults:
            if fault.drops(packet, self._sim):
                self.fault_drops += 1
                if self.lifecycle is not None:
                    self.lifecycle.on_fault_drop(self, packet)
                return False
        if self._busy:
            return self.queue.enqueue(packet)
        # Transmitter idle: the packet still passes through the queue's
        # accounting so arrival/occupancy statistics cover every packet.
        if not self.queue.enqueue(packet):
            return False
        self._start_next()
        return True

    def _start_next(self) -> None:
        """Begin transmitting the head-of-line packet (transmitter idle)."""
        packet = self.queue.dequeue()
        if packet is None:
            return
        sim = self._sim
        now = sim.now
        self._busy = True
        self._busy_since = now
        start = now
        for fault in self.egress_faults:
            start = max(start, fault.stalled_until(now))
        finish = start + packet.size_bits / self.rate_bps
        self._transmitting = packet
        sim.call_at(finish, self._tx_done_ref, label=self._tx_label)
        if self.lifecycle is not None:
            self.lifecycle.on_tx_start(self, packet)

    def _transmission_done(self) -> None:
        packet = self._transmitting
        assert packet is not None
        self._transmitting = None
        sim = self._sim
        now = sim.now
        self.transmitted += 1
        self.transmitted_bits += packet.size_bits
        self._busy_time += now - self._busy_since
        self._inflight.append(packet)
        sim.call_at(now + self.prop_delay, self._deliver_ref,
                    label=self._deliver_label)
        self._busy = False
        if self.lifecycle is not None:
            self.lifecycle.on_tx_done(self, packet)
        self._start_next()

    def _dispatch_deliver(self) -> None:
        # One extra call so ``self._deliver`` is looked up when the event
        # *fires*, not when it was scheduled: a PacketTap installed while
        # packets were already in flight still intercepts their delivery.
        self._deliver()

    def _deliver(self) -> None:
        packet = self._inflight.popleft()
        assert self.peer is not None
        for fault in self.ingress_faults:
            if fault.drops(packet, self._sim):
                self.fault_drops += 1
                if self.lifecycle is not None:
                    self.lifecycle.on_fault_drop(self, packet)
                return
        if self.lifecycle is not None:
            self.lifecycle.on_delivered(self, packet)
        self.peer.handle_packet(packet, ingress=self)

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    @property
    def busy_time(self) -> float:
        """Total seconds the transmitter has been occupied so far.

        Includes the in-progress transmission (up to ``sim.now``) and any
        fault-stall time spent holding a packet.
        """
        accumulated = self._busy_time
        if self._busy:
            accumulated += self._sim.now - self._busy_since
        return accumulated

    def utilization_estimate(self) -> float:
        """Fraction of time the transmitter was busy since it was created.

        Tracked internally from the interface's own busy periods, so no
        caller-supplied window is needed and idle periods (before first
        use or between bursts) are accounted correctly.
        """
        elapsed = self._sim.now - self._created_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:
        return (f"<Interface {self.name} {self.rate_bps:.0f}bps "
                f"prop={seconds_to_ms(self.prop_delay):.1f}ms "
                f"busy={self._busy}>")
